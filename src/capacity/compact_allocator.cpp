#include "capacity/compact_allocator.hpp"

#include <algorithm>

#include "util/assert.hpp"

namespace rlslb::capacity {

CompactAllocator::CompactAllocator(const CompactOptions& options)
    : options_(options),
      loads_(static_cast<std::size_t>(options.bins), 0),
      flushedLoad_(static_cast<std::size_t>(options.bins), 0),
      mass_(static_cast<std::size_t>(options.bins)),
      dirtyMark_(static_cast<std::size_t>(options.bins), 0),
      binHead_(static_cast<std::size_t>(options.bins), -1),
      binTail_(static_cast<std::size_t>(options.bins), -1) {
  RLSLB_ASSERT_MSG(options_.bins >= 1, "CompactOptions.bins must be >= 1");
  RLSLB_ASSERT_MSG(options_.bins <= INT32_MAX,
                   "compact backend addresses bins with int32");
  RLSLB_ASSERT_MSG(options_.arrivalChoices >= 1,
                   "CompactOptions.arrivalChoices must be >= 1");
}

std::int32_t CompactAllocator::allocChunk() {
  if (freeChunk_ >= 0) {
    const std::int32_t index = freeChunk_;
    freeChunk_ = arena_[static_cast<std::size_t>(index)].next;
    return index;
  }
  RLSLB_ASSERT_MSG(arena_.size() < static_cast<std::size_t>(INT32_MAX),
                   "chunk arena exceeds int32 addressing");
  arena_.emplace_back();
  return static_cast<std::int32_t>(arena_.size() - 1);
}

void CompactAllocator::freeChunk(std::int32_t index) {
  arena_[static_cast<std::size_t>(index)].next = freeChunk_;
  freeChunk_ = index;
}

std::int32_t CompactAllocator::listAt(std::int32_t bin, std::int32_t slot) const {
  std::int32_t chunk = binHead_[static_cast<std::size_t>(bin)];
  std::int32_t remaining = slot;
  while (remaining >= kChunkSlots) {
    chunk = arena_[static_cast<std::size_t>(chunk)].next;
    remaining -= kChunkSlots;
  }
  RLSLB_ASSERT(chunk >= 0);
  return arena_[static_cast<std::size_t>(chunk)].slots[remaining];
}

void CompactAllocator::listPush(std::int32_t bin, std::int32_t ball) {
  // The new ball's slot is the pre-increment count == current load (unit
  // weights make count and load the same number).
  const std::int32_t count = loads_[static_cast<std::size_t>(bin)];
  const std::int32_t offset = count % kChunkSlots;
  std::int32_t tail = binTail_[static_cast<std::size_t>(bin)];
  if (offset == 0) {
    const std::int32_t fresh = allocChunk();
    Chunk& c = arena_[static_cast<std::size_t>(fresh)];
    c.next = -1;
    c.prev = tail;
    if (tail >= 0) {
      arena_[static_cast<std::size_t>(tail)].next = fresh;
    } else {
      binHead_[static_cast<std::size_t>(bin)] = fresh;
    }
    binTail_[static_cast<std::size_t>(bin)] = fresh;
    tail = fresh;
  }
  arena_[static_cast<std::size_t>(tail)].slots[offset] = ball;
}

void CompactAllocator::listSwapRemove(std::int32_t bin, std::int32_t slot) {
  const std::int32_t count = loads_[static_cast<std::size_t>(bin)];
  RLSLB_ASSERT(count >= 1 && slot < count);
  const std::int32_t tail = binTail_[static_cast<std::size_t>(bin)];
  const std::int32_t lastOffset = (count - 1) % kChunkSlots;
  Chunk& tailChunk = arena_[static_cast<std::size_t>(tail)];
  const std::int32_t moved = tailChunk.slots[lastOffset];
  if (slot != count - 1) {
    // Overwrite the removed slot with the last ball and repoint its index
    // entry — the dense swap-remove, so later uniform picks see the same
    // per-bin order the dense allocator maintains.
    std::int32_t chunk = binHead_[static_cast<std::size_t>(bin)];
    std::int32_t remaining = slot;
    while (remaining >= kChunkSlots) {
      chunk = arena_[static_cast<std::size_t>(chunk)].next;
      remaining -= kChunkSlots;
    }
    arena_[static_cast<std::size_t>(chunk)].slots[remaining] = moved;
    ballSlot_[static_cast<std::size_t>(moved)] = slot;
  }
  if (lastOffset == 0) {
    // The tail chunk emptied: return it to the freelist.
    const std::int32_t prev = tailChunk.prev;
    if (prev >= 0) {
      arena_[static_cast<std::size_t>(prev)].next = -1;
    } else {
      binHead_[static_cast<std::size_t>(bin)] = -1;
    }
    binTail_[static_cast<std::size_t>(bin)] = prev;
    freeChunk(tail);
  }
}

void CompactAllocator::markDirty(std::int32_t bin) {
  std::uint8_t& mark = dirtyMark_[static_cast<std::size_t>(bin)];
  if (mark == 0) {
    mark = 1;
    dirty_.push_back(bin);
  }
}

void CompactAllocator::placeBall(std::int64_t ball, std::int32_t bin) {
  RLSLB_ASSERT_MSG(ball >= 0 && ball < INT32_MAX,
                   "compact backend requires sequential int32-range ball ids");
  if (static_cast<std::size_t>(ball) >= ballBin_.size()) {
    ballBin_.resize(static_cast<std::size_t>(ball) + 1, -1);
    ballSlot_.resize(static_cast<std::size_t>(ball) + 1, 0);
  }
  RLSLB_ASSERT_MSG(ballBin_[static_cast<std::size_t>(ball)] < 0,
                   "arrive event for a ball id that is already live");
  listPush(bin, static_cast<std::int32_t>(ball));
  ballBin_[static_cast<std::size_t>(ball)] = bin;
  ballSlot_[static_cast<std::size_t>(ball)] = loads_[static_cast<std::size_t>(bin)];
  ++loads_[static_cast<std::size_t>(bin)];
  ++totalLoad_;
  markDirty(bin);
}

void CompactAllocator::removeBall(std::int64_t ball, std::int32_t bin,
                                  std::int32_t slot) {
  listSwapRemove(bin, slot);
  ballBin_[static_cast<std::size_t>(ball)] = -1;
  --loads_[static_cast<std::size_t>(bin)];
  RLSLB_ASSERT(loads_[static_cast<std::size_t>(bin)] >= 0);
  --totalLoad_;
  markDirty(bin);
}

void CompactAllocator::moveBall(std::int64_t ball, std::int32_t fromBin,
                                std::int32_t toBin) {
  listSwapRemove(fromBin, ballSlot_[static_cast<std::size_t>(ball)]);
  --loads_[static_cast<std::size_t>(fromBin)];
  markDirty(fromBin);
  listPush(toBin, static_cast<std::int32_t>(ball));
  ballBin_[static_cast<std::size_t>(ball)] = toBin;
  ballSlot_[static_cast<std::size_t>(ball)] = loads_[static_cast<std::size_t>(toBin)];
  ++loads_[static_cast<std::size_t>(toBin)];
  markDirty(toBin);
}

void CompactAllocator::applyBatch(const workload::Event* events,
                                  const serve::Decision* decisions, std::size_t count) {
  // Same register-accumulated counters as the dense fused hot loop.
  std::int64_t arrivals = 0;
  std::int64_t departures = 0;
  std::int64_t resamples = 0;
  std::int64_t migrations = 0;
  std::int64_t rejected = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const workload::Event& event = events[i];
    switch (event.kind) {
      case workload::EventKind::kArrive: {
        const serve::Decision& decision = decisions[i];
        RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
        RLSLB_ASSERT_MSG(event.weight == 1,
                         "CompactAllocator serves unit-weight traffic only (use the "
                         "dense backend for weighted traces)");
        ++arrivals;
        maxWeightSeen_ = 1;
        placeBall(event.ball, decision.bin);
        break;
      }
      case workload::EventKind::kDepart: {
        ++departures;
        RLSLB_ASSERT(event.ball >= 0 &&
                     static_cast<std::size_t>(event.ball) < ballBin_.size());
        const std::int32_t bin = ballBin_[static_cast<std::size_t>(event.ball)];
        RLSLB_ASSERT_MSG(bin >= 0, "depart event for a ball that is not live");
        removeBall(event.ball, bin, ballSlot_[static_cast<std::size_t>(event.ball)]);
        break;
      }
      case workload::EventKind::kResample: {
        const serve::Decision& decision = decisions[i];
        ++resamples;
        RLSLB_ASSERT(decision.bin >= 0 && decision.bin < options_.bins);
        RLSLB_ASSERT(event.ball >= 0 &&
                     static_cast<std::size_t>(event.ball) < ballBin_.size());
        const std::int32_t src = ballBin_[static_cast<std::size_t>(event.ball)];
        RLSLB_ASSERT_MSG(src >= 0, "resample event for a ball that is not live");
        const std::int32_t dst = decision.bin;
        // Strict rule on live loads, unit weight: the dense acceptance
        // check with w = 1, value for value.
        if (dst != src && ((loads_[static_cast<std::size_t>(dst)] + 1 <
                            loads_[static_cast<std::size_t>(src)]) !=
                           options_.invertAcceptance)) {
          ++migrations;
          moveBall(event.ball, src, dst);
        } else {
          ++rejected;
        }
        break;
      }
    }
  }
  counters_.events += static_cast<std::int64_t>(count);
  counters_.arrivals += arrivals;
  counters_.departures += departures;
  counters_.resamples += resamples;
  counters_.migrations += migrations;
  counters_.rejectedMoves += rejected;
}

void CompactAllocator::flush() {
  for (const std::int32_t bin : dirty_) {
    const auto g = static_cast<std::size_t>(bin);
    const std::int32_t after = loads_[g];
    const std::int32_t before = flushedLoad_[g];
    dirtyMark_[g] = 0;
    if (after == before) continue;  // net-zero over the batch
    flushedLoad_[g] = after;
    mass_.add(g, after - before);
    ++flushedBins_;
  }
  dirty_.clear();
}

bool CompactAllocator::repairMove(rng::Xoshiro256pp& eng) {
  const std::int64_t total = totalLoad_;
  if (total == 0) return false;
  flush();
  ++counters_.repairAttempts;
  // Exact dense draw sequence. The single global Fenwick lands on the same
  // bin as the dense shard-walk + local upperBound because the dense
  // ownership ranges concatenate in bin order.
  const auto ticket = static_cast<std::int64_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(total)));
  const auto src = static_cast<std::int32_t>(mass_.upperBound(ticket));
  const std::int32_t srcCount = loads_[static_cast<std::size_t>(src)];
  RLSLB_ASSERT(srcCount >= 1);
  const auto pick = static_cast<std::int32_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(srcCount)));
  const std::int32_t ball = listAt(src, pick);
  const auto dst = static_cast<std::int32_t>(
      rng::uniformIndex(eng, static_cast<std::uint64_t>(loads_.size())));
  if (dst == src || ((loads_[static_cast<std::size_t>(dst)] + 1 <
                      loads_[static_cast<std::size_t>(src)]) ==
                     options_.invertAcceptance)) {
    return false;
  }
  ++counters_.repairMigrations;
  moveBall(ball, src, dst);
  return true;
}

std::vector<std::int64_t> CompactAllocator::loadsCopy() const {
  return {loads_.begin(), loads_.end()};
}

std::int64_t CompactAllocator::minLoad() const {
  std::int32_t lo = loads_[0];
  for (const std::int32_t v : loads_) lo = std::min(lo, v);
  return lo;
}

std::int64_t CompactAllocator::maxLoad() const {
  std::int32_t hi = loads_[0];
  for (const std::int32_t v : loads_) hi = std::max(hi, v);
  return hi;
}

sim::BalanceState CompactAllocator::balanceState() const {
  sim::BalanceState state;
  state.numBins = numBins();
  state.numBalls = totalLoad_;
  state.minLoad = minLoad();
  state.maxLoad = maxLoad();
  const std::int64_t ceilAvg = (state.numBalls + state.numBins - 1) / state.numBins;
  for (const std::int32_t v : loads_) {
    if (v > ceilAvg) state.overloadedBalls += v - ceilAvg;
  }
  return state;
}

std::int64_t CompactAllocator::residentBytes() const {
  auto vecBytes = [](const auto& v) {
    return static_cast<std::int64_t>(v.capacity() * sizeof(v[0]));
  };
  return vecBytes(loads_) + vecBytes(flushedLoad_) + vecBytes(dirty_) +
         vecBytes(dirtyMark_) + vecBytes(binHead_) + vecBytes(binTail_) +
         vecBytes(ballBin_) + vecBytes(ballSlot_) + vecBytes(arena_) +
         static_cast<std::int64_t>((mass_.size() + 1) * sizeof(std::int64_t));
}

std::int64_t CompactAllocator::estimateBytes(std::int64_t bins, std::int64_t ballsEver,
                                             std::int64_t liveBalls) {
  // Fixed per-bin arrays: loads + flushedLoad + head + tail (4 B each),
  // dirtyMark (1 B), Fenwick (8 B). Implicit ball index: 8 B per ball ever
  // arrived. Arena: one chunk per ceil(live / K) plus per-bin slack of at
  // most one chunk on the busiest bins — approximate with live balls
  // spread across min(bins, live) non-empty lists.
  const std::int64_t perBin = 4 * 4 + 1 + 8;
  const std::int64_t nonEmpty = std::min(bins, liveBalls);
  const std::int64_t chunks =
      (liveBalls + kChunkSlots - 1) / kChunkSlots + nonEmpty / 2;
  return bins * perBin + ballsEver * 8 +
         chunks * static_cast<std::int64_t>(sizeof(Chunk));
}

bool CompactAllocator::validate() const {
  std::int64_t total = 0;
  std::vector<std::int64_t> counted(loads_.size(), 0);
  for (std::size_t ball = 0; ball < ballBin_.size(); ++ball) {
    const std::int32_t bin = ballBin_[ball];
    if (bin < 0) continue;
    if (bin >= static_cast<std::int32_t>(loads_.size())) return false;
    const std::int32_t slot = ballSlot_[ball];
    if (slot < 0 || slot >= loads_[static_cast<std::size_t>(bin)]) return false;
    if (listAt(bin, slot) != static_cast<std::int32_t>(ball)) return false;
    ++counted[static_cast<std::size_t>(bin)];
    ++total;
  }
  for (std::size_t bin = 0; bin < loads_.size(); ++bin) {
    if (counted[bin] != loads_[bin]) return false;
    if ((loads_[bin] == 0) != (binHead_[bin] < 0)) return false;
    if ((binHead_[bin] < 0) != (binTail_[bin] < 0)) return false;
  }
  if (total != totalLoad_) return false;
  // The Fenwick may lag by the dirty set; reconciled it must match.
  for (const std::int32_t bin : dirty_) {
    if (dirtyMark_[static_cast<std::size_t>(bin)] == 0) return false;
  }
  for (std::size_t bin = 0; bin < loads_.size(); ++bin) {
    const std::int64_t flushed = mass_.get(bin);
    if (flushed != flushedLoad_[bin]) return false;
    if (flushed != loads_[bin] && dirtyMark_[bin] == 0) return false;
  }
  return true;
}

}  // namespace rlslb::capacity
