// CapacityLoop: the sequential epoch driver for the compact serving
// backend (capacity/compact_allocator.hpp).
//
// Byte-compatibility is the whole point: this loop re-derives the exact
// per-event decision streams streamSeed(streamSeed(seed,
// serve::kDecisionStreamSalt), ordinal) and per-epoch repair streams
// streamSeed(streamSeed(seed, serve::kRepairStreamSalt), epoch) that
// serve::ShardedEventLoop draws, applies them through the fused batch
// semantics, and settles deferred Fenwick deltas inside the epoch timer —
// so (CompactAllocator + CapacityLoop) and (OnlineAllocator +
// ShardedEventLoop) produce byte-identical loads, counters, and gap
// trajectories on the same trace + seed for ANY dense (shards, threads,
// applyMode) configuration (the dense loop is invariant across those;
// tests/test_capacity.cpp pins the differential matrix).
//
// What it deliberately does NOT replicate: the thread pool, the partition
// machinery, and the queue stats (always zero here). Capacity runs are
// memory-bound sweeps at n = 1e6..1e8 where the state layout, not the
// core count, is the binding constraint.
//
// Timing contract: identical to the dense loop — EpochStats.wallSeconds
// covers decision + apply + repair + flush; trace generation and the
// telemetry/callback tail are outside; RunResult.wallSeconds is the exact
// sum of the per-epoch values.
#pragma once

#include <cstdint>
#include <functional>

#include "capacity/compact_allocator.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "serve/event_loop.hpp"
#include "workload/generators.hpp"

namespace rlslb::capacity {

struct CapacityLoopOptions {
  std::int64_t epochEvents = 1024;  // snapshot-staleness granularity (semantic)
  int repairMovesPerEpoch = 4;
  std::uint64_t seed = 1;
  /// Epoch-boundary telemetry, same contract as serve::LoopOptions: the
  /// per-event hot path never touches either. Exports the serve.* metric
  /// vocabulary (including the serve.mem.* capacity gauges), so
  /// perf_report.py renders capacity runs with the same dashboard.
  obs::MetricsRegistry* metrics = nullptr;
  obs::MonitorSet* monitors = nullptr;
};

class CapacityLoop {
 public:
  CapacityLoop(CompactAllocator& allocator, const CapacityLoopOptions& options);

  struct RunResult {
    std::int64_t events = 0;
    std::int64_t epochs = 0;
    double wallSeconds = 0.0;  // exact sum of per-epoch wallSeconds
  };

  /// Drain the trace; `onEpoch` (may be empty) fires after each epoch with
  /// the shared serve::EpochStats view (queue fields zero, applyShards 1).
  /// Each run() is self-contained: ordinals and the epoch index reset, so
  /// a reused loop draws exactly the streams a fresh one would.
  RunResult run(workload::TraceGenerator& trace,
                const std::function<void(const serve::EpochStats&)>& onEpoch = {});

 private:
  struct MetricIds {
    obs::CounterId events, epochs;
    obs::CounterId arrivals, departures, resamples, migrations, rejectedMoves;
    obs::CounterId repairAttempts, repairMigrations, flushedBins;
    obs::CounterId decideNs, applyNs, repairNs, flushNs;
    obs::GaugeId gap, liveBalls, totalLoad;
    obs::GaugeId memStateBytes, memBytesPerBall, memPeakRss;
    obs::HistId epochGap;
    obs::SketchId epochNs;
  };
  void registerMetrics();

  CompactAllocator* allocator_;
  CapacityLoopOptions options_;
  std::int64_t nextOrdinal_ = 0;
  std::int64_t nextEpoch_ = 0;
  MetricIds ids_;
  bool metricsRegistered_ = false;
};

}  // namespace rlslb::capacity
