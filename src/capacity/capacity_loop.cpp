#include "capacity/capacity_loop.hpp"

#include <vector>

#include "obs/memory.hpp"
#include "rng/splitmix64.hpp"
#include "util/assert.hpp"
#include "util/timer.hpp"

namespace rlslb::capacity {

namespace {
// Microseconds -> integer nanoseconds, clamped at zero (same helper the
// dense loop uses for the serve.phase.*_ns counters).
std::int64_t spanNs(double beginUs, double endUs) {
  const double ns = (endUs - beginUs) * 1e3;
  return ns > 0.0 ? static_cast<std::int64_t>(ns) : 0;
}
}  // namespace

CapacityLoop::CapacityLoop(CompactAllocator& allocator,
                           const CapacityLoopOptions& options)
    : allocator_(&allocator), options_(options) {
  RLSLB_ASSERT_MSG(options_.epochEvents >= 1,
                   "CapacityLoopOptions.epochEvents must be >= 1");
  RLSLB_ASSERT_MSG(options_.repairMovesPerEpoch >= 0,
                   "CapacityLoopOptions.repairMovesPerEpoch must be >= 0");
}

void CapacityLoop::registerMetrics() {
  obs::MetricsRegistry& m = *options_.metrics;
  ids_.events = m.counter("serve.events");
  ids_.epochs = m.counter("serve.epochs");
  ids_.arrivals = m.counter("serve.arrivals");
  ids_.departures = m.counter("serve.departures");
  ids_.resamples = m.counter("serve.resamples");
  ids_.migrations = m.counter("serve.migrations");
  ids_.rejectedMoves = m.counter("serve.rejected_moves");
  ids_.repairAttempts = m.counter("serve.repair_attempts");
  ids_.repairMigrations = m.counter("serve.repair_migrations");
  ids_.flushedBins = m.counter("serve.flushed_bins");
  ids_.decideNs = m.counter("serve.phase.decide_ns");
  ids_.applyNs = m.counter("serve.phase.apply_ns");
  ids_.repairNs = m.counter("serve.phase.repair_ns");
  ids_.flushNs = m.counter("serve.phase.flush_ns");
  ids_.gap = m.gauge("serve.gap");
  ids_.liveBalls = m.gauge("serve.live_balls");
  ids_.totalLoad = m.gauge("serve.total_load");
  ids_.memStateBytes = m.gauge("serve.mem.state_bytes");
  ids_.memBytesPerBall = m.gauge("serve.mem.bytes_per_ball");
  ids_.memPeakRss = m.gauge("serve.mem.peak_rss_bytes");
  ids_.epochGap = m.histogram("serve.epoch_gap", {0, 1, 2, 4, 8, 16, 32, 64, 128});
  ids_.epochNs = m.sketch("serve.epoch_ns");
  metricsRegistered_ = true;
}

CapacityLoop::RunResult CapacityLoop::run(
    workload::TraceGenerator& trace,
    const std::function<void(const serve::EpochStats&)>& onEpoch) {
  nextOrdinal_ = 0;
  nextEpoch_ = 0;
  // The exact dense stream derivation (serve/event_loop.hpp exports the
  // salts for precisely this reuse).
  const std::uint64_t decisionSeed =
      rng::streamSeed(options_.seed, serve::kDecisionStreamSalt);
  const std::uint64_t repairSeed =
      rng::streamSeed(options_.seed, serve::kRepairStreamSalt);

  obs::MetricsRegistry* const metrics = options_.metrics;
  obs::MonitorSet* const monitors = options_.monitors;
  const bool instrumented = metrics != nullptr;
  serve::ServeCounters prevCounters;
  std::int64_t prevFlushedBins = 0;
  if (metrics != nullptr) {
    if (!metricsRegistered_) registerMetrics();
    prevCounters = allocator_->counters();
    prevFlushedBins = allocator_->flushedBins();
  }

  RunResult result;
  std::vector<workload::Event> batch;
  std::vector<serve::Decision> decisions;
  batch.reserve(static_cast<std::size_t>(options_.epochEvents));

  for (;;) {
    batch.clear();
    workload::Event event;
    while (static_cast<std::int64_t>(batch.size()) < options_.epochEvents &&
           trace.next(&event)) {
      batch.push_back(event);
    }
    if (batch.empty()) break;

    WallTimer wall;
    double tEpoch0 = 0.0;
    double tDecide1 = 0.0;
    double tApply1 = 0.0;
    double tRepair1 = 0.0;
    double tFlush1 = 0.0;
    if (instrumented) tEpoch0 = obs::nowUs();
    const std::int64_t baseOrdinal = nextOrdinal_;
    nextOrdinal_ += static_cast<std::int64_t>(batch.size());

    if (decisions.size() < batch.size()) decisions.resize(batch.size());
    {
      rng::Xoshiro256pp eng;  // hoisted; reseeded per event (dense contract)
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const workload::Event& e = batch[i];
        if (e.kind == workload::EventKind::kDepart) continue;  // no randomness
        eng.reseed(rng::streamSeed(
            decisionSeed,
            static_cast<std::uint64_t>(baseOrdinal + static_cast<std::int64_t>(i))));
        decisions[i] = allocator_->decide(e, eng);
      }
    }
    if (instrumented) tDecide1 = obs::nowUs();

    allocator_->applyBatch(batch.data(), decisions.data(), batch.size());
    if (instrumented) tApply1 = obs::nowUs();

    rng::Xoshiro256pp repairEng(
        rng::streamSeed(repairSeed, static_cast<std::uint64_t>(nextEpoch_)));
    for (int k = 0; k < options_.repairMovesPerEpoch; ++k) {
      allocator_->repairMove(repairEng);
    }
    if (instrumented) tRepair1 = obs::nowUs();

    allocator_->flush();
    if (instrumented) tFlush1 = obs::nowUs();

    const double epochWall = wall.seconds();
    result.wallSeconds += epochWall;
    result.events += static_cast<std::int64_t>(batch.size());
    ++result.epochs;

    // Outside the timed region: stats assembly, telemetry, the callback.
    const bool wantBalance =
        static_cast<bool>(onEpoch) || metrics != nullptr || monitors != nullptr;
    sim::BalanceState balance;
    if (wantBalance) balance = allocator_->balanceState();
    const std::int64_t gap = balance.maxLoad - balance.minLoad;

    if (metrics != nullptr) {
      metrics->add(ids_.events, static_cast<std::int64_t>(batch.size()));
      metrics->add(ids_.epochs, 1);
      const serve::ServeCounters& c = allocator_->counters();
      metrics->add(ids_.arrivals, c.arrivals - prevCounters.arrivals);
      metrics->add(ids_.departures, c.departures - prevCounters.departures);
      metrics->add(ids_.resamples, c.resamples - prevCounters.resamples);
      metrics->add(ids_.migrations, c.migrations - prevCounters.migrations);
      metrics->add(ids_.rejectedMoves, c.rejectedMoves - prevCounters.rejectedMoves);
      metrics->add(ids_.repairAttempts, c.repairAttempts - prevCounters.repairAttempts);
      metrics->add(ids_.repairMigrations,
                   c.repairMigrations - prevCounters.repairMigrations);
      prevCounters = c;
      const std::int64_t flushed = allocator_->flushedBins();
      metrics->add(ids_.flushedBins, flushed - prevFlushedBins);
      prevFlushedBins = flushed;
      metrics->add(ids_.decideNs, spanNs(tEpoch0, tDecide1));
      metrics->add(ids_.applyNs, spanNs(tDecide1, tApply1));
      metrics->add(ids_.repairNs, spanNs(tApply1, tRepair1));
      metrics->add(ids_.flushNs, spanNs(tRepair1, tFlush1));
      metrics->set(ids_.gap, static_cast<double>(gap));
      metrics->set(ids_.liveBalls, static_cast<double>(allocator_->liveBalls()));
      metrics->set(ids_.totalLoad, static_cast<double>(allocator_->totalLoad()));
      const auto stateBytes = static_cast<double>(allocator_->residentBytes());
      const std::int64_t live = allocator_->liveBalls();
      metrics->set(ids_.memStateBytes, stateBytes);
      metrics->set(ids_.memBytesPerBall,
                   live > 0 ? stateBytes / static_cast<double>(live) : 0.0);
      metrics->set(ids_.memPeakRss, static_cast<double>(obs::peakRssBytes()));
      metrics->observe(ids_.epochGap, gap);
      metrics->observeSketch(ids_.epochNs, spanNs(tEpoch0, tFlush1));
    }

    if (monitors != nullptr) {
      obs::CheckSample sample;
      sample.origin = obs::CheckSample::Origin::kServeEpoch;
      sample.step = nextEpoch_;
      sample.time = batch.back().time;
      sample.events = static_cast<std::int64_t>(batch.size());
      sample.wallSeconds = epochWall;
      sample.gap = gap;
      sample.liveBalls = allocator_->liveBalls();
      sample.totalLoad = allocator_->totalLoad();
      sample.maxWeight = allocator_->maxWeightSeen();
      const serve::ServeCounters& c = allocator_->counters();
      sample.arrivals = c.arrivals;
      sample.departures = c.departures;
      sample.migrations = c.migrations + c.repairMigrations;
      monitors->check(sample);
    }

    if (onEpoch) {
      serve::EpochStats stats;
      stats.epoch = nextEpoch_;
      stats.traceTime = batch.back().time;
      stats.events = static_cast<std::int64_t>(batch.size());
      stats.liveBalls = allocator_->liveBalls();
      stats.totalLoad = allocator_->totalLoad();
      stats.balance = balance;
      stats.migrations =
          allocator_->counters().migrations + allocator_->counters().repairMigrations;
      stats.wallSeconds = epochWall;
      onEpoch(stats);
    }
    ++nextEpoch_;
  }
  return result;
}

}  // namespace rlslb::capacity
