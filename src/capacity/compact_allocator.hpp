// CompactAllocator: the serving allocator's memory-frugal backend for
// cluster-scale capacity planning (n in the tens of millions).
//
// The dense OnlineAllocator (serve/online_allocator.hpp) spends O(1)
// *structs* per ball: a FlatMap64 BallRec (24-byte entries at <= 3/4 load),
// an optional router entry, and an 8-byte per-bin list slot — fine at
// scenario n, fatal at n = 1e7..1e8. This backend exploits two properties
// the open-system dynamic guarantees when ball weights are all 1:
//
//   - Ball ids are assigned sequentially by the trace generators and never
//     reused, so the ball index is *implicit*: two flat int32 arrays
//     (ballBin_, ballSlot_) indexed by ball id replace both hash maps.
//   - Unit weights make a bin's ball count equal its load, so per-level
//     occupancy IS the dense load array and no per-ball weight is stored
//     anywhere.
//
// Per-bin ball lists — needed only so the repair activation's uniform
// in-bin pick lands on the byte-identical ball the dense allocator picks —
// are chunked int32 lists in a pooled arena (kChunkSlots ids + two links
// per chunk) instead of one std::vector per bin (24-byte headers alone
// would cost 2.4 GB at n = 1e8). Net: ~12-16 bytes per live ball plus
// ~20 bytes per bin, versus ~60-100 bytes per ball dense.
//
// Equivalence contract (pinned by tests/test_capacity.cpp): driven by
// capacity::CapacityLoop over the same trace and seed, this backend
// produces byte-identical observable output — loads, gap trajectory, every
// ServeCounters field, the repair stream — to OnlineAllocator under
// ShardedEventLoop at ANY (shards, threads, applyMode) setting, because the
// dense loop is itself invariant across those. Every rng draw sequence
// (d-choice, resample candidate, the repair ticket/pick/candidate triple)
// and every ordering decision (per-bin append / swap-remove slots) is
// replicated exactly; the Fenwick here is a single global tree, which lands
// on the same bin as the dense per-shard walk because ownership ranges
// concatenate in bin order.
//
// Sequential-only by design: capacity runs are memory-bound, and the dense
// backend already owns the multicore story.
#pragma once

#include <cstdint>
#include <vector>

#include "ds/fenwick.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"
#include "serve/online_allocator.hpp"
#include "workload/event.hpp"

namespace rlslb::capacity {

/// Knobs mirrored from serve::AllocatorOptions (weights are fixed at 1, so
/// there is no weight knob to mirror).
struct CompactOptions {
  std::int64_t bins = 256;
  int arrivalChoices = 2;
  bool invertAcceptance = false;  // TEST HOOK; see serve::AllocatorOptions
};

class CompactAllocator {
 public:
  explicit CompactAllocator(const CompactOptions& options);

  /// Pure decision phase against the live int32 load array; draw-for-draw
  /// identical to OnlineAllocator::decide on the same loads (ties keep the
  /// first draw; comparisons are value-equal since loads fit int32).
  [[nodiscard]] serve::Decision decide(const workload::Event& event,
                                       rng::Xoshiro256pp& eng) const {
    const auto n = static_cast<std::uint64_t>(loads_.size());
    serve::Decision d;
    switch (event.kind) {
      case workload::EventKind::kArrive: {
        auto best = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
        for (int c = 1; c < options_.arrivalChoices; ++c) {
          const auto candidate = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
          if (loads_[static_cast<std::size_t>(candidate)] <
              loads_[static_cast<std::size_t>(best)]) {
            best = candidate;
          }
        }
        d.bin = best;
        break;
      }
      case workload::EventKind::kResample:
        d.bin = static_cast<std::int32_t>(rng::uniformIndex(eng, n));
        break;
      case workload::EventKind::kDepart:
        break;
    }
    return d;
  }

  /// Fused apply of a whole batch in trace order; per-event semantics and
  /// counter accounting identical to OnlineAllocator::applyBatch. Every
  /// arrive must carry weight 1 (asserted) — the compact layout has
  /// nowhere to put a weight.
  void applyBatch(const workload::Event* events, const serve::Decision* decisions,
                  std::size_t count);

  /// Settle deferred Fenwick deltas (O(dirty bins); net-zero bins skipped,
  /// exactly the dense deferred-accounting rule).
  void flush();

  /// One RLS repair activation: the exact dense draw sequence (load ticket
  /// -> Fenwick upperBound bin -> uniform in-bin slot -> uniform candidate
  /// bin -> strict rule). Returns whether a ball moved.
  bool repairMove(rng::Xoshiro256pp& eng);

  [[nodiscard]] std::int64_t numBins() const {
    return static_cast<std::int64_t>(loads_.size());
  }
  [[nodiscard]] std::int64_t totalLoad() const { return totalLoad_; }
  [[nodiscard]] std::int64_t liveBalls() const { return totalLoad_; }  // unit weights
  [[nodiscard]] std::int64_t maxWeightSeen() const { return maxWeightSeen_; }
  [[nodiscard]] const serve::ServeCounters& counters() const { return counters_; }
  [[nodiscard]] const std::vector<std::int32_t>& loads32() const { return loads_; }
  /// Widened copy for differential comparison against the dense backend.
  [[nodiscard]] std::vector<std::int64_t> loadsCopy() const;
  [[nodiscard]] std::int64_t minLoad() const;
  [[nodiscard]] std::int64_t maxLoad() const;
  [[nodiscard]] std::int64_t gap() const { return maxLoad() - minLoad(); }
  /// Same closed-system view the dense balanceState() exposes.
  [[nodiscard]] sim::BalanceState balanceState() const;
  [[nodiscard]] std::int64_t flushedBins() const { return flushedBins_; }

  /// Heap bytes of every structure, O(1) from capacities — the number the
  /// frontier records report as state_bytes.
  [[nodiscard]] std::int64_t residentBytes() const;

  /// Predicted residentBytes for a run shape, used by the serve_capacity
  /// memory-budget gate BEFORE allocating anything: per-bin fixed arrays
  /// plus the implicit ball index over every ball ever arrived plus arena
  /// chunks for the expected live population.
  [[nodiscard]] static std::int64_t estimateBytes(std::int64_t bins,
                                                  std::int64_t ballsEver,
                                                  std::int64_t liveBalls);

  /// Internal-consistency scan (O(n + live); tests only).
  [[nodiscard]] bool validate() const;

 private:
  // Chunked per-bin ball lists: fixed-size id blocks linked forward and
  // backward in one pooled arena. Order within a bin is append order with
  // swap-remove backfill — the dense per-bin vector's order, exactly.
  static constexpr std::int32_t kChunkSlots = 8;
  struct Chunk {
    std::int32_t slots[kChunkSlots];
    std::int32_t next = -1;
    std::int32_t prev = -1;
  };

  [[nodiscard]] std::int32_t allocChunk();
  void freeChunk(std::int32_t index);
  /// Ball id stored at dense-order slot `slot` of `bin` (O(slot / K)).
  [[nodiscard]] std::int32_t listAt(std::int32_t bin, std::int32_t slot) const;
  void listPush(std::int32_t bin, std::int32_t ball);
  /// Swap-remove at `slot`: overwrite with the last ball (whose ballSlot_
  /// is patched) and shrink — byte-compatible with the dense eraseBall.
  void listSwapRemove(std::int32_t bin, std::int32_t slot);

  void markDirty(std::int32_t bin);
  void placeBall(std::int64_t ball, std::int32_t bin);
  void removeBall(std::int64_t ball, std::int32_t bin, std::int32_t slot);
  void moveBall(std::int64_t ball, std::int32_t fromBin, std::int32_t toBin);

  CompactOptions options_;
  std::vector<std::int32_t> loads_;        // live per-bin ball counts
  std::vector<std::int32_t> flushedLoad_;  // Fenwick view, lags by dirty_
  ds::Fenwick<std::int64_t> mass_;         // repair bin sampling
  std::vector<std::int32_t> dirty_;
  std::vector<std::uint8_t> dirtyMark_;
  std::vector<std::int32_t> binHead_;  // first chunk per bin, -1 = empty
  std::vector<std::int32_t> binTail_;  // last chunk per bin, -1 = empty
  std::vector<Chunk> arena_;
  std::int32_t freeChunk_ = -1;  // freelist head through Chunk::next
  // The implicit ball index: grows with the largest ball id ever seen
  // (sequential ids make this an amortized append).
  std::vector<std::int32_t> ballBin_;   // -1 = not live
  std::vector<std::int32_t> ballSlot_;  // dense-order slot within the bin
  serve::ServeCounters counters_;
  std::int64_t totalLoad_ = 0;
  std::int64_t maxWeightSeen_ = 0;
  std::int64_t flushedBins_ = 0;
};

}  // namespace rlslb::capacity
