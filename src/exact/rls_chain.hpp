// Exact analysis of the RLS configuration process for tiny systems: the
// independent oracle behind the engine-validation tests (docs/EXPERIMENTS.md,
// E13).
//
// Projected onto load multisets, RLS is a CTMC whose states are the
// partitions of m into at most n parts and whose transitions are the
// multiset-changing moves: one ball from a level-v bin to a level-u bin with
// u <= v - 2, at rate v * cnt(v) * cnt(u) / n. (Neutral moves u = v - 1 are
// self-loops of the lumped chain; and because the lumped chain is identical
// for the paper's ">=" protocol and the strict ">" variant of [12, 11], the
// exact times computed here apply to both -- the paper's Section 3 remark.)
//
// For small (n, m) -- the state count is the partition number p(m; <= n
// parts), e.g. 627 for m = 20 -- the expected time to perfect balance from
// *every* state is the solution of one dense linear system. The test suite
// uses these exact values to validate both simulation engines to
// statistical precision, and bench_lowerbound reports them next to
// simulated values.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "config/configuration.hpp"

namespace rlslb::exact {

class RlsChain {
 public:
  /// Enumerates all states. Practical up to roughly m <= 24 (p(24) = 1575
  /// states; the dense solve is cubic in the state count).
  RlsChain(std::int64_t n, std::int64_t m);

  [[nodiscard]] std::size_t numStates() const { return states_.size(); }
  [[nodiscard]] std::size_t numAbsorbing() const { return numAbsorbing_; }

  /// State id of a configuration (loads are sorted internally).
  [[nodiscard]] std::size_t stateId(const std::vector<std::int64_t>& loads) const;

  /// Sorted-descending load vector of a state (zero-padded to n entries).
  [[nodiscard]] const std::vector<std::int64_t>& state(std::size_t id) const {
    return states_[id];
  }

  /// E[time to perfect balance] from every state (0 for absorbing states).
  /// Computed once, cached.
  [[nodiscard]] const std::vector<double>& expectedBalanceTimes() const;

  /// Convenience: E[T] from a labeled configuration.
  [[nodiscard]] double expectedTimeFrom(const config::Configuration& c) const;

  /// E[T^2] from every state, for exact variance of the balancing time.
  [[nodiscard]] const std::vector<double>& expectedSquaredTimes() const;

  /// Exact P(T <= t) from state `id` via uniformization: with Lambda >=
  /// max exit rate and the uniformized DTMC P = I + Q/Lambda,
  /// P(T <= t) = sum_k Poisson(k; Lambda*t) * P(absorbed within k DTMC
  /// steps). The Poisson tail is truncated below 1e-12. This gives the
  /// full balancing-time *distribution*, against which the test suite runs
  /// one-sample KS tests of the simulation engines.
  [[nodiscard]] double absorptionCdf(std::size_t id, double t) const;

 private:
  std::int64_t n_;
  std::int64_t m_;
  std::vector<std::vector<std::int64_t>> states_;  // sorted descending, padded with zeros
  std::map<std::vector<std::int64_t>, std::size_t> index_;
  std::size_t numAbsorbing_ = 0;

  struct Transition {
    std::size_t to;
    double rate;
  };
  std::vector<std::vector<Transition>> transitions_;  // outgoing, per state
  std::vector<double> exitRates_;

  mutable std::vector<double> expectedTimes_;
  mutable std::vector<double> expectedSquares_;
  // absorbedByStep_[id][k] = P(absorbed within k uniformized DTMC steps),
  // built lazily per initial state.
  mutable std::vector<std::vector<double>> absorbedByStep_;
  mutable double uniformizationRate_ = 0.0;

  void enumerateStates();
  void buildTransitions();
  const std::vector<double>& absorbedByStep(std::size_t id, std::size_t needSteps) const;
};

}  // namespace rlslb::exact
