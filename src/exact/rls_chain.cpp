#include "exact/rls_chain.hpp"

#include <algorithm>
#include <cmath>

#include "ds/load_multiset.hpp"
#include "stats/linalg.hpp"
#include "util/assert.hpp"

namespace rlslb::exact {

RlsChain::RlsChain(std::int64_t n, std::int64_t m) : n_(n), m_(m) {
  RLSLB_ASSERT(n >= 1 && m >= 0);
  enumerateStates();
  buildTransitions();
}

void RlsChain::enumerateStates() {
  // Generate partitions of m_ into at most n_ parts, parts non-increasing.
  std::vector<std::int64_t> current;
  const std::int64_t n = n_;
  auto recurse = [&](auto&& self, std::int64_t remaining, std::int64_t maxPart) -> void {
    if (remaining == 0) {
      std::vector<std::int64_t> padded = current;
      padded.resize(static_cast<std::size_t>(n), 0);
      index_.emplace(padded, states_.size());
      states_.push_back(std::move(padded));
      return;
    }
    if (static_cast<std::int64_t>(current.size()) == n) return;
    const std::int64_t hi = std::min(maxPart, remaining);
    // Feasibility: remaining slots must be able to absorb `remaining`.
    const std::int64_t slotsLeft = n - static_cast<std::int64_t>(current.size());
    for (std::int64_t part = hi; part >= 1; --part) {
      if (part * slotsLeft < remaining) break;
      current.push_back(part);
      self(self, remaining - part, part);
      current.pop_back();
    }
  };
  recurse(recurse, m_, m_ == 0 ? 1 : m_);
}

void RlsChain::buildTransitions() {
  transitions_.resize(states_.size());
  exitRates_.assign(states_.size(), 0.0);
  numAbsorbing_ = 0;
  const double nd = static_cast<double>(n_);

  for (std::size_t s = 0; s < states_.size(); ++s) {
    const auto ms = ds::LoadMultiset::fromLoads(states_[s]);
    const auto& levels = ms.levels();
    for (std::size_t vi = 0; vi < levels.size(); ++vi) {
      for (std::size_t ui = 0; ui < vi; ++ui) {
        const std::int64_t v = levels[vi].load;
        const std::int64_t u = levels[ui].load;
        if (v < u + 2) continue;  // neutral or invalid: self-loop of lumped chain
        const double rate = static_cast<double>(v) * static_cast<double>(levels[vi].count) *
                            static_cast<double>(levels[ui].count) / nd;
        ds::LoadMultiset next = ms;
        next.applyBallMove(v, u);
        auto loads = next.toSortedLoads();
        std::reverse(loads.begin(), loads.end());
        const auto it = index_.find(loads);
        RLSLB_ASSERT_MSG(it != index_.end(), "transition target not enumerated");
        transitions_[s].push_back({it->second, rate});
        exitRates_[s] += rate;
      }
    }
    if (transitions_[s].empty()) ++numAbsorbing_;
  }
}

std::size_t RlsChain::stateId(const std::vector<std::int64_t>& loads) const {
  std::vector<std::int64_t> key = loads;
  std::sort(key.begin(), key.end(), std::greater<>());
  key.resize(static_cast<std::size_t>(n_), 0);
  const auto it = index_.find(key);
  RLSLB_ASSERT_MSG(it != index_.end(), "unknown state (wrong n or m?)");
  return it->second;
}

const std::vector<double>& RlsChain::expectedBalanceTimes() const {
  if (!expectedTimes_.empty()) return expectedTimes_;

  // Transient states only; absorbing states have E[T] = 0.
  std::vector<std::size_t> transient;
  std::vector<std::size_t> transientIndex(states_.size(), SIZE_MAX);
  for (std::size_t s = 0; s < states_.size(); ++s) {
    if (!transitions_[s].empty()) {
      transientIndex[s] = transient.size();
      transient.push_back(s);
    }
  }

  const std::size_t k = transient.size();
  stats::Matrix a(k, k, 0.0);
  std::vector<double> b(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t s = transient[i];
    a.at(i, i) = 1.0;
    b[i] = 1.0 / exitRates_[s];
    for (const auto& tr : transitions_[s]) {
      if (transientIndex[tr.to] == SIZE_MAX) continue;  // absorbing: E = 0
      a.at(i, transientIndex[tr.to]) -= tr.rate / exitRates_[s];
    }
  }
  std::vector<double> x;
  const bool ok = solveLinearSystem(std::move(a), std::move(b), x);
  RLSLB_ASSERT_MSG(ok, "absorbing-chain system singular");

  expectedTimes_.assign(states_.size(), 0.0);
  for (std::size_t i = 0; i < k; ++i) expectedTimes_[transient[i]] = x[i];
  return expectedTimes_;
}

const std::vector<double>& RlsChain::expectedSquaredTimes() const {
  if (!expectedSquares_.empty()) return expectedSquares_;
  const auto& et = expectedBalanceTimes();

  std::vector<std::size_t> transient;
  std::vector<std::size_t> transientIndex(states_.size(), SIZE_MAX);
  for (std::size_t s = 0; s < states_.size(); ++s) {
    if (!transitions_[s].empty()) {
      transientIndex[s] = transient.size();
      transient.push_back(s);
    }
  }

  // E[T^2 | s] = 2/R^2 + (2/R) * sum_j P(s->j) E[T|j] + sum_j P(s->j) E[T^2|j].
  const std::size_t k = transient.size();
  stats::Matrix a(k, k, 0.0);
  std::vector<double> b(k, 0.0);
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t s = transient[i];
    const double r = exitRates_[s];
    a.at(i, i) = 1.0;
    double mixed = 0.0;
    for (const auto& tr : transitions_[s]) {
      mixed += tr.rate / r * et[tr.to];
      if (transientIndex[tr.to] != SIZE_MAX) {
        a.at(i, transientIndex[tr.to]) -= tr.rate / r;
      }
    }
    b[i] = 2.0 / (r * r) + 2.0 / r * mixed;
  }
  std::vector<double> x;
  const bool ok = solveLinearSystem(std::move(a), std::move(b), x);
  RLSLB_ASSERT_MSG(ok, "second-moment system singular");

  expectedSquares_.assign(states_.size(), 0.0);
  for (std::size_t i = 0; i < k; ++i) expectedSquares_[transient[i]] = x[i];
  return expectedSquares_;
}

const std::vector<double>& RlsChain::absorbedByStep(std::size_t id, std::size_t needSteps) const {
  if (absorbedByStep_.empty()) {
    absorbedByStep_.resize(states_.size());
    uniformizationRate_ = 0.0;
    for (double r : exitRates_) uniformizationRate_ = std::max(uniformizationRate_, r);
    if (uniformizationRate_ <= 0.0) uniformizationRate_ = 1.0;
  }
  auto& seq = absorbedByStep_[id];
  if (seq.size() > needSteps) return seq;

  // March the uniformized DTMC distribution forward from scratch or from a
  // cached suffix. Rebuilding from scratch keeps the cache simple: the
  // cost is O(steps * transitions), tiny for test-scale chains.
  std::vector<double> dist(states_.size(), 0.0);
  dist[id] = 1.0;
  seq.assign(1, transitions_[id].empty() ? 1.0 : 0.0);
  std::vector<double> next(states_.size(), 0.0);
  for (std::size_t k = 1; k <= needSteps; ++k) {
    std::fill(next.begin(), next.end(), 0.0);
    for (std::size_t s = 0; s < states_.size(); ++s) {
      const double p = dist[s];
      if (p <= 0.0) continue;
      if (transitions_[s].empty()) {
        next[s] += p;  // absorbing: stays
        continue;
      }
      const double stay = 1.0 - exitRates_[s] / uniformizationRate_;
      next[s] += p * stay;
      for (const auto& tr : transitions_[s]) {
        next[tr.to] += p * tr.rate / uniformizationRate_;
      }
    }
    dist.swap(next);
    double absorbed = 0.0;
    for (std::size_t s = 0; s < states_.size(); ++s) {
      if (transitions_[s].empty()) absorbed += dist[s];
    }
    seq.push_back(absorbed);
  }
  return seq;
}

double RlsChain::absorptionCdf(std::size_t id, double t) const {
  RLSLB_ASSERT(id < states_.size());
  if (t <= 0.0) return transitions_[id].empty() ? 1.0 : 0.0;
  // Ensure the uniformization rate is initialized before sizing the sum.
  (void)absorbedByStep(id, 0);
  const double lt = uniformizationRate_ * t;
  const auto kMax = static_cast<std::size_t>(lt + 12.0 * std::sqrt(lt + 1.0) + 40.0);
  const auto& seq = absorbedByStep(id, kMax);

  // Poisson(k; lt) weights computed iteratively in log space start.
  double cdf = 0.0;
  double logPmf = -lt;  // k = 0
  for (std::size_t k = 0; k <= kMax; ++k) {
    if (k > 0) logPmf += std::log(lt) - std::log(static_cast<double>(k));
    const double w = std::exp(logPmf);
    cdf += w * seq[k];
  }
  return std::min(1.0, cdf);
}

double RlsChain::expectedTimeFrom(const config::Configuration& c) const {
  RLSLB_ASSERT(c.numBins() == n_ && c.numBalls() == m_);
  return expectedBalanceTimes()[stateId(c.loads())];
}

}  // namespace rlslb::exact
