#include "scenario/harness.hpp"

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>

namespace rlslb::scenario {

ScenarioContext contextFromArgs(const CliArgs& args) {
  ScenarioContext ctx;
  ctx.scaleName = args.getString("scale", "default");
  if (ctx.scaleName == "small") {
    ctx.scale = 0.5;
  } else if (ctx.scaleName == "default") {
    ctx.scale = 1.0;
  } else if (ctx.scaleName == "full") {
    ctx.scale = 2.0;
  } else {
    std::fprintf(stderr, "unknown --scale=%s (small|default|full)\n", ctx.scaleName.c_str());
    std::exit(2);
  }
  ctx.reps = args.getInt("reps", 0);
  ctx.seed = static_cast<std::uint64_t>(args.getInt("seed", 20170529));
  ctx.threads = args.getThreads(0);
  ctx.csv = args.getBool("csv", false);
  const std::string conformance = args.getString("conformance", "off");
  if (conformance == "on") {
    ctx.conformanceDefault = true;
  } else if (conformance == "strict") {
    ctx.conformanceDefault = true;
    ctx.conformanceStrict = true;
  } else if (conformance == "off") {
    ctx.conformanceDefault = false;
  } else {
    std::fprintf(stderr, "unknown --conformance=%s (on|off|strict)\n",
                 conformance.c_str());
    std::exit(2);
  }
  return ctx;
}

int conformanceExit(const ScenarioContext& ctx) {
  if (ctx.conformanceChecks > 0 && ctx.console != nullptr) {
    *ctx.console << "[conformance] run total: " << ctx.conformanceChecks << " checks, "
                 << ctx.anomalyWarnings << " warnings, " << ctx.anomalyErrors
                 << " errors"
                 << (ctx.conformanceStrict && ctx.anomalyErrors > 0
                         ? " -- FAILING (strict)"
                         : "")
                 << '\n';
  }
  return ctx.conformanceStrict && ctx.anomalyErrors > 0 ? 3 : 0;
}

void applyParamTokens(ScenarioContext& ctx, const std::vector<std::string>& tokens) {
  std::string error;
  if (!ScenarioParams::fromTokens(tokens, &ctx.params, &error)) {
    std::fprintf(stderr, "%s\n", error.c_str());
    std::exit(2);
  }
}

process::ProcessParams forwardProcessParams(const process::ProcessSpec& spec,
                                            const ScenarioParams& params) {
  process::ProcessParams out;
  for (const process::ParamSpec& p : spec.params) {
    if (params.has(p.name)) out.set(p.name, params.getString(p.name, ""));
  }
  return out;
}

bool ResultOutput::attach(const std::string& outPath, ScenarioContext& ctx) {
  if (outPath.empty()) return true;
  file_.open(outPath);
  if (!file_) {
    std::fprintf(stderr, "cannot open --out=%s for writing\n", outPath.c_str());
    return false;
  }
  sink_ = report::ResultSink(&file_);
  ctx.sink = &sink_;

  report::RunManifest manifest = report::makeManifest();
  manifest.seed = ctx.seed;
  manifest.scaleName = ctx.scaleName;
  manifest.scale = ctx.scale;
  manifest.reps = ctx.reps;
  manifest.threadsRequested = ctx.threads;
  manifest.threadsResolved = runner::ThreadPool::resolveThreadCount(ctx.threads);
  sink_.writeManifest(manifest);
  return true;
}

void TraceOutput::attach(const std::string& tracePath, ScenarioContext& ctx) {
  if (tracePath.empty()) return;
  if (!obs::kTracingCompiledIn) {
    std::fprintf(stderr,
                 "--trace-out=%s ignored: tracing is compiled out (build with "
                 "-DRLSLB_TRACING=ON)\n",
                 tracePath.c_str());
    return;
  }
  path_ = tracePath;
  ctx.trace = &writer_;
  // Job spans for every parallelFor of the run (replication fan-outs, the
  // serve phases relabel on top); workers were assigned tracks at pool
  // construction, which ctx.pool() forces here if it has not happened yet.
  ctx.pool().setTraceWriter(&writer_);
  active_ = true;
}

bool TraceOutput::finish(ScenarioContext& ctx) {
  if (!active_) return true;
  ctx.pool().setTraceWriter(nullptr);
  ctx.trace = nullptr;
  if (!writer_.writeFile(path_)) {
    std::fprintf(stderr, "cannot write --trace-out=%s\n", path_.c_str());
    return false;
  }
  if (ctx.console != nullptr) {
    *ctx.console << "[trace] " << writer_.eventCount() << " events -> " << path_
                 << "  (load in ui.perfetto.dev or chrome://tracing)\n";
  }
  return true;
}

int runStandalone(int argc, char** argv, const std::string& scenarioName) {
  // Split bare key=value tokens (parameter overrides) from --flags before
  // CliArgs sees them; CliArgs insists on the -- prefix.
  std::vector<std::string> flagStrings;
  std::vector<std::string> paramTokens;
  if (argc > 0) flagStrings.emplace_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      flagStrings.push_back(arg);
    } else {
      paramTokens.push_back(arg);
    }
  }
  std::vector<const char*> flagPtrs;
  flagPtrs.reserve(flagStrings.size());
  for (const auto& s : flagStrings) flagPtrs.push_back(s.c_str());
  const CliArgs args(static_cast<int>(flagPtrs.size()), flagPtrs.data());

  ScenarioContext ctx = contextFromArgs(args);
  applyParamTokens(ctx, paramTokens);

  const std::string outPath = args.getString("out", "");
  const std::string tracePath = args.getString("trace-out", "");
  const auto unused = args.unusedKeys();
  if (!unused.empty()) {
    for (const auto& k : unused) std::fprintf(stderr, "unknown flag --%s\n", k.c_str());
    return 2;
  }
  ResultOutput out;
  if (!out.attach(outPath, ctx)) return 2;
  TraceOutput traceOut;
  traceOut.attach(tracePath, ctx);

  registerBuiltinScenarios();
  const ScenarioRegistry& registry = ScenarioRegistry::global();

  try {
    registry.runOne(scenarioName, ctx);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
  if (!traceOut.finish(ctx)) return 2;

  const auto unusedParams = ctx.params.unusedKeys();
  if (!unusedParams.empty()) {
    for (const auto& k : unusedParams) {
      std::fprintf(stderr, "unknown parameter %s (not read by %s)\n", k.c_str(),
                   scenarioName.c_str());
    }
    return 2;
  }
  return conformanceExit(ctx);
}

}  // namespace rlslb::scenario
