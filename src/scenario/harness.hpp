// Shared CLI harness for the scenario drivers.
//
// Two kinds of binary resolve experiments through the ScenarioRegistry:
//   - the unified driver `rlslb` (examples/rlslb.cpp) with list/run/all
//     subcommands, and
//   - the standalone bench_* mains, each a one-line wrapper over
//     runStandalone() so historical invocations keep working:
//         ./bench/bench_theorem1 --scale=small --seed=7
//     is exactly `rlslb run e1_theorem1 --scale=small --seed=7`.
//
// Both accept the common knobs (--scale/--seed/--reps/--threads/--csv) plus
// --out=FILE to stream JSONL records (report/result_sink.hpp), and bare
// key=value tokens as scenario parameter overrides.
#pragma once

#include <fstream>
#include <string>
#include <vector>

#include "process/registry.hpp"
#include "scenario/scenario.hpp"
#include "util/cli.hpp"

namespace rlslb::scenario {

/// Build a ScenarioContext from the common `--key=value` knobs (including
/// --conformance=on|off|strict). Exits with code 2 on a malformed --scale
/// or --conformance. Does not check unused flags (the caller may still
/// consume e.g. --out).
ScenarioContext contextFromArgs(const CliArgs& args);

/// Print the run-total conformance summary (when any checks ran) and
/// return the driver exit code: 3 when --conformance=strict saw
/// error-severity anomalies, 0 otherwise.
int conformanceExit(const ScenarioContext& ctx);

/// Fill `ctx.params` from bare key=value tokens; exits with code 2 on a
/// malformed token.
void applyParamTokens(ScenarioContext& ctx, const std::vector<std::string>& tokens);

/// Forward exactly the keys `spec` declares from the scenario's `key=value`
/// overrides into a ProcessParams (marking them consumed on the scenario
/// side). One spelling of every knob across both layers: a scenario takes
/// e.g. `process=threshold threshold=8 p=0.25` and hands the latter two to
/// process::makeProcess.
process::ProcessParams forwardProcessParams(const process::ProcessSpec& spec,
                                            const ScenarioParams& params);

/// Caller-owned holder for the --out stream and its sink (both must
/// outlive the scenario runs). attach() with a non-empty path opens the
/// file, wires ctx.sink, and writes the run manifest from the context's
/// knobs; an empty path leaves the sink disabled. Returns false (with a
/// stderr message) when the file cannot be opened.
class ResultOutput {
 public:
  bool attach(const std::string& outPath, ScenarioContext& ctx);

 private:
  std::ofstream file_;
  report::ResultSink sink_;
};

/// Caller-owned holder for the --trace-out= writer (must outlive the
/// scenario runs). attach() with a non-empty path wires ctx.trace and the
/// shared pool's job spans; when tracing is compiled out (RLSLB_TRACING=0)
/// it warns on stderr and stays detached, so the flag is accepted but
/// inert. finish() serializes the Chrome trace-event JSON after the runs
/// (false + stderr message on IO failure; true when never attached).
class TraceOutput {
 public:
  void attach(const std::string& tracePath, ScenarioContext& ctx);
  bool finish(ScenarioContext& ctx);

 private:
  std::string path_;
  obs::TraceWriter writer_;
  bool active_ = false;
};

/// Entry point for the thin standalone bench_* mains: parse the common
/// knobs + --out + key=value overrides from argv, register the built-in
/// roster, run `scenarioName`, and return the process exit code.
int runStandalone(int argc, char** argv, const std::string& scenarioName);

}  // namespace rlslb::scenario
