#include "scenario/scenario.hpp"

#include <cstdio>
#include <stdexcept>

#include "util/assert.hpp"

namespace rlslb::scenario {

void ScenarioContext::emitTable(const Table& table, const std::string& title) {
  if (console != nullptr) {
    table.print(*console, title);
    *console << '\n';
    if (csv) *console << "CSV <<<\n" << table.toCsv() << ">>>\n\n";
  }
  if (sink != nullptr) sink->writeTable(activeScenario, title, table);
}

void ScenarioContext::emitTimingTable(const Table& table, const std::string& title) {
  if (console != nullptr) {
    table.print(*console, title);
    *console << '\n';
    if (csv) *console << "CSV <<<\n" << table.toCsv() << ">>>\n\n";
  }
  if (sink != nullptr) sink->writeTimingTable(activeScenario, title, table);
}

void ScenarioContext::note(const std::string& text) {
  if (console != nullptr) *console << text << '\n';
}

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry registry;
  return registry;
}

void ScenarioRegistry::add(Scenario s) {
  RLSLB_ASSERT_MSG(!s.name.empty() && s.run != nullptr, "scenario needs a name and a body");
  const auto [it, inserted] = byName_.emplace(s.name, std::move(s));
  if (!inserted) {
    throw std::invalid_argument("duplicate scenario name: " + it->first);
  }
}

const Scenario* ScenarioRegistry::find(const std::string& name) const {
  const auto it = byName_.find(name);
  return it == byName_.end() ? nullptr : &it->second;
}

std::vector<const Scenario*> ScenarioRegistry::list() const {
  std::vector<const Scenario*> out;
  out.reserve(byName_.size());
  for (const auto& [_, s] : byName_) out.push_back(&s);  // map order = name order
  return out;
}

void ScenarioRegistry::runOne(const std::string& name, ScenarioContext& ctx) const {
  const Scenario* s = find(name);
  if (s == nullptr) {
    std::string known;
    for (const auto& [n, _] : byName_) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    throw std::out_of_range("unknown scenario '" + name + "' (known: " + known + ")");
  }

  ctx.activeScenario = s->name;
  if (ctx.console != nullptr) {
    *ctx.console << "==============================================================\n"
                 << s->name << "  [" << s->paperRef << "]\n"
                 << "reproduces: " << s->description << "\n"
                 << "scale=" << ctx.scaleName << " seed=" << ctx.seed
                 << " threads=" << ctx.threads << (ctx.threads == 0 ? " (hardware)" : "")
                 << "\n==============================================================\n\n";
  }
  if (ctx.sink != nullptr) {
    ctx.sink->beginScenario(s->name, s->paperRef, ctx.params.toJson());
  }

  // Per-scenario telemetry: the registry starts empty (no stale
  // instruments from the previous scenario) and its merged snapshot lands
  // right before the scenario_end record when anything registered. The
  // conformance roster follows the same lifecycle.
  ctx.metrics.reset();
  ctx.monitors.clear();

  WallTimer wall;
  s->run(ctx);
  const double seconds = wall.seconds();

  if (ctx.sink != nullptr && !ctx.metrics.empty()) {
    ctx.sink->writeMetrics(s->name, ctx.metrics.toJson());
  }
  if (!ctx.monitors.empty()) {
    ctx.monitors.finish();
    const obs::AnomalyLog& log = ctx.monitors.log();
    if (ctx.sink != nullptr) {
      for (std::size_t i = 0; i < log.size(); ++i) {
        ctx.sink->writeAnomaly(s->name, obs::anomalyToJson(log.at(i)));
      }
      ctx.sink->writeConformance(s->name, ctx.monitors.summaryJson());
    }
    ctx.conformanceChecks += ctx.monitors.checks();
    ctx.anomalyWarnings += log.warnings();
    ctx.anomalyErrors += log.errors();
    if (ctx.console != nullptr) {
      *ctx.console << "[conformance] " << ctx.monitors.checks() << " checks, "
                   << log.warnings() << " warnings, " << log.errors() << " errors";
      if (log.dropped() > 0) *ctx.console << " (" << log.dropped() << " dropped)";
      *ctx.console << '\n';
      const std::size_t shown = log.size() < 5 ? log.size() : std::size_t{5};
      for (std::size_t i = 0; i < shown; ++i) {
        const obs::Anomaly& a = log.at(i);
        *ctx.console << "  [" << obs::severityName(a.severity) << "] " << a.monitor
                     << "/" << a.metric << " step " << a.step << ": " << a.detail
                     << " (value " << a.value << ", bound " << a.bound << ")\n";
      }
      if (log.size() > shown) {
        *ctx.console << "  ... " << (log.size() - shown) << " more\n";
      }
      *ctx.console << '\n';
    }
  }
  if (ctx.sink != nullptr) ctx.sink->endScenario(s->name, seconds);
  if (ctx.console != nullptr) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%s done in %.1f s]\n\n", s->name.c_str(), seconds);
    *ctx.console << buf;
  }
  ctx.activeScenario.clear();
}

}  // namespace rlslb::scenario
