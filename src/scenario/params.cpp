#include "scenario/params.hpp"

#include "util/parse.hpp"

namespace rlslb::scenario {

bool ScenarioParams::fromTokens(const std::vector<std::string>& tokens, ScenarioParams* out,
                                std::string* error) {
  ScenarioParams p;
  for (const std::string& tok : tokens) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) *error = "malformed parameter '" + tok + "' (expected key=value)";
      return false;
    }
    p.values_[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  *out = std::move(p);
  return true;
}

bool ScenarioParams::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  used_[name] = true;
  return true;
}

std::string ScenarioParams::getString(const std::string& name, const std::string& dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return it->second;
}

std::int64_t ScenarioParams::getInt(const std::string& name, std::int64_t dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return util::parseInt64(it->second, name);
}

double ScenarioParams::getDouble(const std::string& name, double dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return util::parseDouble(it->second, name);
}

bool ScenarioParams::getBool(const std::string& name, bool dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return util::parseBool(it->second, name);
}

std::vector<std::string> ScenarioParams::unusedKeys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    auto it = used_.find(k);
    if (it == used_.end() || !it->second) out.push_back(k);
  }
  return out;
}

report::Json ScenarioParams::toJson() const {
  report::Json j = report::Json::object();
  for (const auto& [k, v] : values_) j.set(k, v);
  return j;
}

}  // namespace rlslb::scenario
