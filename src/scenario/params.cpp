#include "scenario/params.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/assert.hpp"

namespace rlslb::scenario {

bool ScenarioParams::fromTokens(const std::vector<std::string>& tokens, ScenarioParams* out,
                                std::string* error) {
  ScenarioParams p;
  for (const std::string& tok : tokens) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      if (error != nullptr) *error = "malformed parameter '" + tok + "' (expected key=value)";
      return false;
    }
    p.values_[tok.substr(0, eq)] = tok.substr(eq + 1);
  }
  *out = std::move(p);
  return true;
}

bool ScenarioParams::has(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  used_[name] = true;
  return true;
}

std::string ScenarioParams::getString(const std::string& name, const std::string& dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  return it->second;
}

std::int64_t ScenarioParams::getInt(const std::string& name, std::int64_t dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 10);
  if (end != nullptr && *end == '\0') {
    RLSLB_ASSERT_MSG(errno != ERANGE, "integer parameter out of int64 range");
    return v;
  }
  // Scientific shorthand ("1e6", "2.5e3"): accept iff exactly integral and
  // representable.
  end = nullptr;
  const double d = std::strtod(it->second.c_str(), &end);
  RLSLB_ASSERT_MSG(end != nullptr && *end == '\0', "malformed integer parameter value");
  RLSLB_ASSERT_MSG(std::nearbyint(d) == d && std::fabs(d) < 9.2e18,
                   "integer parameter is not an exact integer");
  return static_cast<std::int64_t>(d);
}

double ScenarioParams::getDouble(const std::string& name, double dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  RLSLB_ASSERT_MSG(end != nullptr && *end == '\0', "malformed double parameter value");
  return v;
}

bool ScenarioParams::getBool(const std::string& name, bool dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  used_[name] = true;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  RLSLB_ASSERT_MSG(false, "malformed boolean parameter value");
  return dflt;
}

std::vector<std::string> ScenarioParams::unusedKeys() const {
  std::vector<std::string> out;
  for (const auto& [k, _] : values_) {
    auto it = used_.find(k);
    if (it == used_.end() || !it->second) out.push_back(k);
  }
  return out;
}

report::Json ScenarioParams::toJson() const {
  report::Json j = report::Json::object();
  for (const auto& [k, v] : values_) j.set(k, v);
  return j;
}

}  // namespace rlslb::scenario
