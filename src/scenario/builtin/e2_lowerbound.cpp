// e2_lowerbound -- E2/E3/E9: the matching lower bounds and the m <= n regime.
//
// E2 (Omega(ln n)): from the all-in-one start at least m - ceil(m/n) balls
//     must be activated; the expected time for that alone is
//     H_m - H_avg ~ ln(n). Measured activations and times are compared to
//     both exact quantities.
// E3 (Omega(n^2/m)): the two-point configuration needs exactly
//     Exp((avg+1)/n) time: measured means must sit ON n/(avg+1), and for
//     small systems the exact absorbing-chain value is printed next to it.
// E9 (Lemma 8, m <= n): expected time O(n); the harness reports T/n.
#include <cmath>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "exact/rls_chain.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/summary.hpp"
#include "util/format.hpp"

namespace rlslb::scenario::builtin {

namespace {

double harmonic(std::int64_t k) {
  // Exact for small k, asymptotic expansion beyond.
  if (k <= 0) return 0.0;
  if (k < 1000) {
    double h = 0.0;
    for (std::int64_t i = 1; i <= k; ++i) h += 1.0 / static_cast<double>(i);
    return h;
  }
  const double kd = static_cast<double>(k);
  return std::log(kd) + 0.5772156649015329 + 1.0 / (2.0 * kd) - 1.0 / (12.0 * kd * kd);
}

void runLowerbound(ScenarioContext& ctx) {
  // ------------------------------------------------------------------ E2
  {
    // m = n^2 makes the n^2/m endgame O(1) so the ln n floor is visible.
    Table table({"n", "m", "reps", "E[T]", "ci95", "H_m - H_avg", "T ratio", "mean moves",
                 "m - ceil(avg)"});
    for (const std::int64_t n : {ctx.sized(64), ctx.sized(128), ctx.sized(256)}) {
      const std::int64_t m = n * n;
      const std::int64_t reps = ctx.repsOr(25);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n), 2,
          [&](std::int64_t, std::uint64_t seed) {
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Naive;  // counts activations
            o.seed = seed;
            const auto r = core::balance(config::allInOne(n, m), o);
            return std::vector<double>{r.time, static_cast<double>(r.moves)};
          }, ctx.pool());
      const auto t = result.summary(0);
      const auto moves = result.summary(1);
      const double bound = harmonic(m) - harmonic((m + n - 1) / n);
      table.row()
          .cell(n)
          .cell(m)
          .cell(reps)
          .cell(t.mean)
          .cell(t.ci95Half)
          .cell(bound, 4)
          .cell(t.mean / bound, 3)
          .cell(moves.mean, 5)
          .cell(m - (m + n - 1) / n);
    }
    ctx.emitTable(table,
                  "[E2] Omega(ln n) lower bound: all-in-one start "
                  "(ratio >= 1 required; moves >= m - ceil(avg) structurally)");
  }

  // ------------------------------------------------------------------ E3
  {
    Table table({"n", "avg", "reps", "E[T]", "ci95", "exact n/(avg+1)", "chain exact",
                 "rel err"});
    struct Cell {
      std::int64_t n, avg;
    };
    // The first cell is small enough for the absorbing-chain solver, so the
    // closed form, the chain, and the simulation triangulate.
    for (const Cell c : {Cell{8, 2}, Cell{ctx.sized(64), 2}, Cell{ctx.sized(256), 2},
                         Cell{ctx.sized(1024), 2}, Cell{ctx.sized(256), 8},
                         Cell{ctx.sized(256), 32}}) {
      const std::int64_t m = c.n * c.avg;
      const std::int64_t reps = ctx.repsOr(400);
      const auto samples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(c.n * 977 + c.avg),
          [&](std::int64_t, std::uint64_t seed) {
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Jump;
            o.seed = seed;
            return core::balancingTime(config::twoPoint(c.n, m), o);
          }, ctx.pool());
      const auto s = stats::summarize(samples);
      const double exactVal = static_cast<double>(c.n) / static_cast<double>(c.avg + 1);
      std::string chainCol = "-";
      if (m <= 20) {
        exact::RlsChain chain(c.n, m);
        chainCol = formatSig(chain.expectedTimeFrom(config::twoPoint(c.n, m)), 5);
      }
      table.row()
          .cell(c.n)
          .cell(c.avg)
          .cell(reps)
          .cell(s.mean)
          .cell(s.ci95Half)
          .cell(exactVal, 5)
          .cell(chainCol)
          .cell(std::fabs(s.mean - exactVal) / exactVal, 2);
    }
    ctx.emitTable(table,
                  "[E3] Omega(n^2/m) lower bound: two-point configuration "
                  "(E[T] = n/(avg+1) EXACTLY; measured must sit on it)");
  }

  // ------------------------------------------------------------------ E9
  {
    Table table({"n", "m", "reps", "E[T]", "ci95", "T/n", "Lemma 8 bound/n"});
    for (const std::int64_t n : {ctx.sized(256), ctx.sized(1024), ctx.sized(4096)}) {
      for (const std::int64_t m : {n / 2, n}) {
        const std::int64_t reps = ctx.repsOr(50);
        const auto samples = runner::runReplicationsScalar(
            reps, ctx.seed ^ static_cast<std::uint64_t>(n * 31 + m),
            [&](std::int64_t, std::uint64_t seed) {
              core::SimOptions o;
              o.engine = core::SimOptions::EngineKind::Hybrid;
              o.seed = seed;
              return core::balancingTime(config::allInOne(n, m), o);
            }, ctx.pool());
        const auto s = stats::summarize(samples);
        // Lemma 8's explicit bound: sum_{r=2..m} n / (r(r-1)) = n*(1 - 1/m).
        const double lemmaBound = static_cast<double>(n) *
                                  (1.0 - 1.0 / static_cast<double>(m));
        table.row()
            .cell(n)
            .cell(m)
            .cell(reps)
            .cell(s.mean)
            .cell(s.ci95Half)
            .cell(s.mean / static_cast<double>(n), 4)
            .cell(lemmaBound / static_cast<double>(n), 4);
      }
    }
    ctx.emitTable(table,
                  "[E9] Lemma 8 (m <= n): E[T] = O(n); measured T/n must stay below "
                  "the lemma's constant");
  }
}

}  // namespace

void registerLowerbound(ScenarioRegistry& r) {
  r.add({"e2_lowerbound",
         "Theorem 1 lower bounds: Omega(ln n) and Omega(n^2/m); Lemma 8 (m <= n)",
         "Theorem 1; Lemmas 8, 18, 19", runLowerbound});
}

}  // namespace rlslb::scenario::builtin
