// micro_substrate -- substrate micro-costs, recorded into the JSON results.
//
// The registry-native companion to bench_engines (which needs Google
// Benchmark and is therefore not always built): a fixed-budget loop timer
// over the data-structure hot paths the engines are built on, so every
// `rlslb all --out=...` run leaves per-op costs in the results file next
// to the experiment wall-clocks CI tracks.
//
// The headline pair is Fenwick total() cached vs the root-prefix-sum
// recompute it replaced: the naive engine's weighted draw consumes the
// tree total every activation, and caching turns that O(log n) walk into
// a load (see ds/fenwick.hpp).
//
// Parameters: n (tree size, default 100000 -- deliberately not a power of
// two: prefixSum(n) touches one node per set bit of n, so a power-of-two
// size would collapse the recompute walk to a single read and understate
// the win), ops (per-measurement loop count, default 2e6, scaled by
// --scale), jump_levels (distinct loads kept in play for the jump-step
// rows, default 512 -- the level-index-vs-scan gap grows with it).
#include <cstdint>
#include <memory>
#include <vector>

#include "ds/fenwick.hpp"
#include "ds/load_multiset.hpp"
#include "rng/distributions.hpp"
#include "rng/xoshiro256pp.hpp"
#include "scenario/builtin/builtin.hpp"
#include "sim/jump_engine.hpp"
#include "util/timer.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runMicroSubstrate(ScenarioContext& ctx) {
  const auto n = static_cast<std::size_t>(ctx.params.getInt("n", 100000));
  const auto ops = static_cast<std::int64_t>(
      static_cast<double>(ctx.params.getInt("ops", 2'000'000)) * ctx.scale);

  Table table({"operation", "n", "ops", "ns/op"});
  const auto measure = [&](const char* name, std::int64_t count, auto&& body) {
    WallTimer wall;
    body(count);
    const double ns = wall.seconds() * 1e9 / static_cast<double>(count);
    table.row().cell(name).cell(n).cell(count).cell(ns, 4);
  };

  ds::Fenwick<std::int64_t> tree(std::vector<std::int64_t>(n, 4));
  rng::Xoshiro256pp eng(ctx.seed);
  volatile std::int64_t sinkValue = 0;  // defeat dead-code elimination

  measure("fenwick add (+1/-1 pair)", ops, [&](std::int64_t count) {
    std::size_t i = 0;
    for (std::int64_t k = 0; k < count; ++k) {
      tree.add(i, 1);
      tree.add(i, -1);
      i = static_cast<std::size_t>(rng::uniformIndex(eng, n));
    }
  });

  measure("fenwick weighted sample", ops, [&](std::int64_t count) {
    const std::int64_t total = tree.total();
    for (std::int64_t k = 0; k < count; ++k) {
      const auto ticket =
          static_cast<std::int64_t>(rng::uniformIndex(eng, static_cast<std::uint64_t>(total)));
      sinkValue = sinkValue + static_cast<std::int64_t>(tree.upperBound(ticket));
    }
  });

  measure("fenwick total (cached)", ops, [&](std::int64_t count) {
    for (std::int64_t k = 0; k < count; ++k) sinkValue = sinkValue + tree.total();
  });

  measure("fenwick total (root prefix-sum recompute)", ops, [&](std::int64_t count) {
    for (std::int64_t k = 0; k < count; ++k) sinkValue = sinkValue + tree.prefixSum(n);
  });

  measure("multiset ball move (64 levels)", ops / 4, [&](std::int64_t count) {
    const auto fresh = [] {
      std::vector<std::int64_t> loads;
      for (std::int64_t i = 0; i < 64; ++i) loads.push_back(100 + i);
      return ds::LoadMultiset::fromLoads(loads);
    };
    auto ms = fresh();
    for (std::int64_t k = 0; k < count; ++k) {
      if (ms.maxLoad() - ms.minLoad() < 2) ms = fresh();
      ms.applyBallMove(ms.maxLoad(), ms.minLoad());
    }
  });

  // Jump-engine step cost, before/after the incremental level index
  // (ROADMAP open item: the O(L) per-event level-weight rebuild). A
  // staircase start keeps L = jump_levels distinct loads in play, the
  // regime where the rebuild hurt; the engine is re-created whenever the
  // chain absorbs.
  const auto jumpLevels = ctx.params.getInt("jump_levels", 512);
  const auto staircase = [jumpLevels] {
    std::vector<std::int64_t> loads;
    for (std::int64_t i = 0; i < jumpLevels; ++i) loads.push_back(i);
    return ds::LoadMultiset::fromLoads(loads);
  };
  const auto measureJump = [&](const char* label, bool useIndex) {
    measure(label, ops / 16, [&](std::int64_t count) {
      std::uint64_t seed = ctx.seed;
      // Both rows pay one identical engine construction (the ctor builds
      // the index for this config either way) per refresh, amortized over
      // jump_levels steps; disableLevelIndex before the first step is
      // O(1) (the multiset is still fresh), so the refresh overhead
      // cancels out of the row comparison.
      const auto fresh = [&] {
        auto engine = std::make_unique<sim::JumpEngine>(staircase(), ++seed);
        if (useIndex) {
          engine->enableLevelIndex();
        } else {
          engine->disableLevelIndex();
        }
        return engine;
      };
      auto engine = fresh();
      std::int64_t sinceFresh = 0;
      for (std::int64_t k = 0; k < count; ++k) {
        // Refresh every ~jump_levels steps (and on absorption) so the
        // level count stays near its initial value: the measurement targets
        // the many-levels regime where the O(L) rebuild hurt.
        if (++sinceFresh >= jumpLevels || !engine->step()) {
          engine = fresh();
          sinceFresh = 0;
        }
      }
    });
  };
  measureJump("jump step (incremental level index, O(log D))", true);
  measureJump("jump step (O(L) scan rebuild)", false);

  ctx.emitTimingTable(table,
                      "[micro] substrate per-op costs (wall-clock; the cached-total row "
                      "must be a small constant, the recompute row ~log n loads, and the "
                      "indexed jump step must beat the scan rebuild at high level counts)");
}

}  // namespace

void registerMicroSubstrate(ScenarioRegistry& r) {
  r.add({"micro_substrate",
         "substrate micro-costs: Fenwick add/sample/total (cached vs recompute), multiset move",
         "engineering baseline (E13 companion)", runMicroSubstrate,
         {{"n", "int", "100000", "Fenwick size"},
          {"ops", "int", "2e6 (scaled)", "operations per micro row"},
          {"jump_levels", "int", "512", "distinct levels for the jump-engine rows"}}});
}

}  // namespace rlslb::scenario::builtin
