// e8_dml -- the Destructive Majorization Lemma (Lemma 2), empirically.
//
// Runs RLS under destructive-move adversaries of increasing aggressiveness
// and checks the two faces of the lemma:
//  (a) convergence-time dominance for adversaries tied to protocol moves
//      (reversal with probability p: E[T_adv] is nondecreasing in p);
//  (b) fixed-horizon discrepancy dominance for free-running adversaries
//      (random-pair / min-to-max injections), where convergence itself may
//      be destroyed -- exactly why the lemma is phrased as stochastic
//      dominance of disc(t), not as a time bound.
#include <memory>
#include <vector>

#include "config/generators.hpp"
#include "core/dml.hpp"
#include "core/rls.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/summary.hpp"
#include "util/format.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runDml(ScenarioContext& ctx) {
  const std::int64_t n = ctx.params.getInt("n", ctx.sized(64));
  const std::int64_t m = 8 * n;
  const auto init = config::allInOne(n, m);

  // ------------------------------------------------- (a) reversal ladder
  {
    Table table({"adversary", "reps", "E[T]", "ci95", "slowdown vs plain"});
    double plainMean = 0.0;
    for (const double p : {0.0, 0.1, 0.25, 0.5, 0.7}) {
      const std::int64_t reps = ctx.repsOr(60);
      const auto samples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(p * 1000),
          [&](std::int64_t, std::uint64_t seed) {
            core::ReverseLastMoveAdversary adv(p);
            return core::runWithAdversary(init, seed, adv, sim::Target::perfect()).time;
          }, ctx.pool());
      const auto s = stats::summarize(samples);
      if (p == 0.0) plainMean = s.mean;
      table.row()
          .cell("reverse-last p=" + formatSig(p, 2))
          .cell(reps)
          .cell(s.mean)
          .cell(s.ci95Half)
          .cell(s.mean / plainMean, 3);
    }
    ctx.emitTable(table,
                  "[E8a] reversal adversary: E[T] nondecreasing in reversal probability "
                  "(p=0 row is plain RLS)");
  }

  // --------------------------------------- (b) fixed-horizon dominance
  {
    const double horizon = 8.0;
    sim::RunLimits limits;
    limits.maxTime = horizon;
    Table table({"adversary", "reps", "mean disc(T=8)", "ci95", "vs plain"});

    const std::int64_t reps = ctx.repsOr(80);
    const auto runPlain = [&](std::int64_t, std::uint64_t seed) {
      core::SimOptions o;
      o.engine = core::SimOptions::EngineKind::Naive;
      o.seed = seed;
      return core::balance(init, o, sim::Target::perfect(), limits).finalState.discrepancy();
    };
    const auto plain = stats::summarize(
        runner::runReplicationsScalar(reps, ctx.seed ^ 0x111, runPlain, ctx.pool()));
    table.row().cell("none (plain RLS)").cell(reps).cell(plain.mean).cell(plain.ci95Half).cell(
        "1");

    struct Row {
      const char* name;
      std::unique_ptr<core::DestructiveAdversary> (*make)();
    };
    const Row rows[] = {
        {"random-pair x1/event",
         [] {
           return std::unique_ptr<core::DestructiveAdversary>(new core::RandomPairAdversary(1));
         }},
        {"min-to-max p=0.05",
         [] {
           return std::unique_ptr<core::DestructiveAdversary>(new core::MinToMaxAdversary(0.05));
         }},
        {"min-to-max p=0.2",
         [] {
           return std::unique_ptr<core::DestructiveAdversary>(new core::MinToMaxAdversary(0.2));
         }},
    };
    for (const auto& row : rows) {
      const auto samples = runner::runReplicationsScalar(
          reps, ctx.seed ^ 0x222, [&](std::int64_t, std::uint64_t seed) {
            auto adv = row.make();
            return core::runWithAdversary(init, seed, *adv, sim::Target::perfect(), limits)
                .finalState.discrepancy();
          }, ctx.pool());
      const auto s = stats::summarize(samples);
      table.row().cell(row.name).cell(reps).cell(s.mean).cell(s.ci95Half).cell(
          s.mean / plain.mean, 3);
    }
    ctx.emitTable(table,
                  "[E8b] discrepancy at fixed horizon t=8: every adversary row must "
                  "dominate the plain row (Lemma 2's stochastic dominance)");
  }
}

}  // namespace

void registerDml(ScenarioRegistry& r) {
  r.add({"e8_dml", "Lemma 2 (DML): destructive moves never speed up RLS",
         "Lemma 2; Section 4", runDml,
         {{"n", "int", "64 (scaled)", "bins"}}});
}

}  // namespace rlslb::scenario::builtin
