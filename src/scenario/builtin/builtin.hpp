// Registration hooks for the built-in experiment roster (one per ported
// bench harness; bodies live in src/scenario/builtin/*.cpp). Explicitly
// called from registerBuiltinScenarios() in register_all.cpp — no static
// initializers, so nothing depends on whole-archive link semantics.
#pragma once

#include <cstdint>
#include <string_view>

#include "scenario/scenario.hpp"

namespace rlslb::scenario::builtin {

/// FNV-1a, used to derive per-case seed salts from row labels. NOT
/// std::hash: that is implementation-defined, and salts feed replication
/// seeds, so they must be identical across standard libraries for the
/// cross-machine byte-determinism contract (report/result_sink.hpp).
inline std::uint64_t stableHash(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

void registerTheorem1(ScenarioRegistry& r);       // e1_theorem1
void registerLowerbound(ScenarioRegistry& r);     // e2_lowerbound (E2/E3/E9)
void registerWhp(ScenarioRegistry& r);            // e4_whp
void registerPhases(ScenarioRegistry& r);         // e5_phases (E5-E7)
void registerDml(ScenarioRegistry& r);            // e8_dml
void registerBaselines(ScenarioRegistry& r);      // e10_baselines
void registerExtensions(ScenarioRegistry& r);     // e11_extensions
void registerGraphs(ScenarioRegistry& r);         // e12_graphs
void registerOpensystem(ScenarioRegistry& r);     // e14_opensystem
void registerTrajectory(ScenarioRegistry& r);     // e15_trajectory
void registerAblation(ScenarioRegistry& r);       // ablation
void registerMicroSubstrate(ScenarioRegistry& r); // micro_substrate
void registerServe(ScenarioRegistry& r);          // serve_poisson/bursty/diurnal/adversarial/composed
void registerServeCapacity(ScenarioRegistry& r);  // serve_capacity
void registerProcessCompare(ScenarioRegistry& r); // process_compare

}  // namespace rlslb::scenario::builtin
