// e11_extensions -- Section 7 extensions one and two: bin speeds and
// weighted balls.
//
// Speeds: bins with integer speeds; RLS with the strict-improvement rule
// converges to a Nash equilibrium whose per-speed loads track m*s_i/sum(s).
// The table reports time to equilibrium and the final weighted discrepancy
// across speed skews.
//
// Weights: balls with integer weights; equilibrium spread is bounded by the
// maximum weight. The table sweeps weight distributions and reports time to
// equilibrium, final spread, and the max-weight bound.
#include <algorithm>
#include <functional>
#include <string>
#include <vector>

#include "config/generators.hpp"
#include "ext/speed_rls.hpp"
#include "ext/weighted_rls.hpp"
#include "rng/distributions.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/summary.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runExtensions(ScenarioContext& ctx) {
  // --------------------------------------------------------------- speeds
  {
    const std::int64_t n = ctx.params.getInt("n", ctx.sized(128));
    const std::int64_t m = 16 * n;
    struct Skew {
      const char* name;
      std::function<std::int64_t(std::int64_t)> speedOf;
    };
    const Skew skews[] = {
        {"uniform s=1", [](std::int64_t) -> std::int64_t { return 1; }},
        {"half 1 / half 2", [n](std::int64_t i) -> std::int64_t { return i < n / 2 ? 1 : 2; }},
        {"1:2:4 thirds",
         [n](std::int64_t i) -> std::int64_t { return i < n / 3 ? 1 : (i < 2 * n / 3 ? 2 : 4); }},
        {"one fast (s=8)", [n](std::int64_t i) -> std::int64_t { return i == n - 1 ? 8 : 1; }},
    };
    Table table({"speeds", "reps", "E[time to Nash]", "ci95", "final wdisc", "moves"});
    for (const auto& skew : skews) {
      std::vector<std::int64_t> speeds(static_cast<std::size_t>(n));
      for (std::int64_t i = 0; i < n; ++i) speeds[static_cast<std::size_t>(i)] = skew.speedOf(i);
      const std::int64_t reps = ctx.repsOr(15);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ stableHash(skew.name), 3,
          [&](std::int64_t, std::uint64_t seed) {
            ext::SpeedRlsEngine engine(config::allInOne(n, m), speeds, seed);
            const auto r = engine.runUntilEquilibrium(500'000'000);
            return std::vector<double>{r.time, engine.weightedDiscrepancy(),
                                       static_cast<double>(r.moves)};
          }, ctx.pool());
      const auto t = result.summary(0);
      const auto wd = result.summary(1);
      const auto mv = result.summary(2);
      table.row()
          .cell(skew.name)
          .cell(reps)
          .cell(t.mean)
          .cell(t.ci95Half)
          .cell(wd.mean, 3)
          .cell(mv.mean, 5);
    }
    ctx.emitTable(table,
                  "[E11-speeds] all-in-one start, n=128, m=16n: time to Nash "
                  "equilibrium under speed skew (weighted disc settles below ~1/s_min)");
  }

  // -------------------------------------------------------------- weights
  {
    const std::int64_t n = ctx.params.getInt("n", ctx.sized(128));
    struct Dist {
      const char* name;
      std::function<std::vector<std::int64_t>(rng::Xoshiro256pp&)> weights;
      std::int64_t count;
    };
    const std::int64_t unitCount = 16 * n;
    const Dist dists[] = {
        {"unit (w=1)",
         [unitCount](rng::Xoshiro256pp&) {
           return std::vector<std::int64_t>(static_cast<std::size_t>(unitCount), 1);
         },
         unitCount},
        {"uniform 1..8",
         [unitCount](rng::Xoshiro256pp& eng) {
           std::vector<std::int64_t> w(static_cast<std::size_t>(unitCount / 4));
           for (auto& x : w) x = 1 + static_cast<std::int64_t>(rng::uniformIndex(eng, 8));
           return w;
         },
         unitCount / 4},
        {"bimodal 1 / 16",
         [unitCount](rng::Xoshiro256pp& eng) {
           std::vector<std::int64_t> w(static_cast<std::size_t>(unitCount / 4));
           for (auto& x : w) x = rng::bernoulli(eng, 0.1) ? 16 : 1;
           return w;
         },
         unitCount / 4},
    };
    Table table({"weights", "balls", "reps", "E[time to Nash]", "ci95", "final spread",
                 "max weight"});
    for (const auto& dist : dists) {
      const std::int64_t reps = ctx.repsOr(15);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ stableHash(dist.name), 3,
          [&](std::int64_t, std::uint64_t seed) {
            rng::Xoshiro256pp weng(seed ^ 0xfeed);
            auto weights = dist.weights(weng);
            std::int64_t maxW = 0;
            for (auto w : weights) maxW = std::max(maxW, w);
            std::vector<std::uint32_t> start(weights.size(), 0);  // all on bin 0
            ext::WeightedRlsEngine engine(n, std::move(weights), std::move(start), seed);
            const auto r = engine.runUntilEquilibrium(500'000'000);
            return std::vector<double>{r.time, static_cast<double>(r.finalSpread),
                                       static_cast<double>(maxW)};
          }, ctx.pool());
      const auto t = result.summary(0);
      const auto spread = result.summary(1);
      const auto maxW = result.summary(2);
      table.row()
          .cell(dist.name)
          .cell(dist.count)
          .cell(reps)
          .cell(t.mean)
          .cell(t.ci95Half)
          .cell(spread.mean, 3)
          .cell(maxW.mean, 3);
    }
    ctx.emitTable(table,
                  "[E11-weights] all-on-one-bin start, n=128: time to Nash and final "
                  "spread (bounded by the max weight, mirroring the unit-weight "
                  "perfect-balance guarantee)");
  }
}

}  // namespace

void registerExtensions(ScenarioRegistry& r) {
  r.add({"e11_extensions", "Section 7 extensions: bin speeds and weighted balls",
         "Section 7", runExtensions,
         {{"n", "int", "128 (scaled)", "bins (both sections)"}}});
}

}  // namespace rlslb::scenario::builtin
