// e15_trajectory -- ensemble trajectories: E[disc(t)] and E[overloaded(t)].
//
// The figure-style companion to the phase tables (E5-E7): the mean
// discrepancy trajectory from the worst case shows the three regimes the
// analysis predicts -- an exponential crash during Phase 1 (each ball's
// first activations), a fast mop-up to the logarithmic band, and the long
// Exp(n/avg)-paced endgame -- and the overloaded-ball curve shows Lemma
// 15's overload decay.
//
// Parameters: n (bins, default 1024), ratio (m/n, default 8), dt (grid
// step, default 0.5), horizon (default 24).
#include <string>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "scenario/builtin/builtin.hpp"
#include "sim/ensemble.hpp"
#include "sim/probes.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runTrajectory(ScenarioContext& ctx) {
  const std::int64_t n = ctx.params.getInt("n", ctx.sized(1024, 2));
  const std::int64_t m = ctx.params.getInt("ratio", 8) * n;
  const std::int64_t reps = ctx.repsOr(40);
  const double dt = ctx.params.getDouble("dt", 0.5);
  const double horizon = ctx.params.getDouble("horizon", 24.0);

  const auto ensemble = sim::accumulateEnsemble(
      dt, horizon, reps, ctx.seed,
      [&](std::int64_t, std::uint64_t seed) {
        sim::TrajectoryRecorder recorder(dt / 4.0);
        core::SimOptions o;
        o.engine = core::SimOptions::EngineKind::Hybrid;
        o.seed = seed;
        sim::RunLimits limits;
        limits.maxTime = horizon + 1.0;
        core::balance(config::allInOne(n, m), o, sim::Target::perfect(), limits, &recorder);
        return recorder.points();
      },
      ctx.pool());

  Table table({"t", "E[disc]", "E[log(1+disc)]", "E[overloaded]", "disc/avg"});
  const double avg = static_cast<double>(m) / static_cast<double>(n);
  for (std::size_t g = 0; g < ensemble.gridSize(); ++g) {
    table.row()
        .cell(ensemble.timeAt(g), 4)
        .cell(ensemble.meanDiscrepancy(g), 5)
        .cell(ensemble.meanLogDiscrepancy(g), 4)
        .cell(ensemble.meanOverloaded(g), 5)
        .cell(ensemble.meanDiscrepancy(g) / avg, 4);
  }
  ctx.emitTable(table,
                "[E15] ensemble means over " + std::to_string(reps) +
                    " runs, all-in-one start, n=" + std::to_string(n) +
                    ", m=" + std::to_string(m) +
                    " (log column linear in t during Phase 1 = exponential decay)");
}

}  // namespace

void registerTrajectory(ScenarioRegistry& r) {
  r.add({"e15_trajectory", "ensemble mean trajectories of disc(t) and overloaded(t)",
         "Section 6 (figure-style companion)", runTrajectory,
         {{"n", "int", "1024 (scaled, even)", "bins"},
          {"ratio", "int", "8", "balls per bin (m = ratio * n)"},
          {"dt", "double", "0.5", "trajectory sampling interval"},
          {"horizon", "double", "24", "trajectory length in time units"}}});
}

}  // namespace rlslb::scenario::builtin
