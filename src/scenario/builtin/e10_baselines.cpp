// e10_baselines -- the related-work baselines of Section 2, quantitatively.
//
// (A) RLS vs the strict-inequality variant of [Goldberg'04, Ganesh+'12]:
//     the paper remarks the balancing times coincide exactly; the table
//     reports both means and a Mann-Whitney p-value (must NOT separate).
// (B) Local search from a two-choice start: RLS activations to perfect
//     balance vs CRS [9] pair-draws to local stability. Section 2: RLS
//     needs O(n^2) activations, CRS n^{O(1)} draws with a larger exponent.
// (C) Synchronous protocols from the worst case: rounds to reach a
//     logarithmic band for selfish rerouting [4], EDM global-average [10],
//     and threshold [1], next to RLS's continuous time (one time unit ~ one
//     round of m expected activations). Shows the knowledge/synchrony
//     trade-off the paper discusses.
// (D) Self-stabilizing repeated balls-into-bins [2] at m = n.
#include <cmath>
#include <functional>
#include <memory>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "protocols/crs.hpp"
#include "protocols/edm.hpp"
#include "protocols/repeated.hpp"
#include "protocols/selfish.hpp"
#include "protocols/threshold.hpp"
#include "rng/xoshiro256pp.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/summary.hpp"
#include "stats/tests.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runBaselines(ScenarioContext& ctx) {
  // ------------------------------------------------ (A) strict variant
  {
    Table table({"n", "m", "reps", "E[T] gap=1", "E[T] gap=2", "MWU p-value", "verdict"});
    for (const std::int64_t n : {ctx.sized(64), ctx.sized(256)}) {
      const std::int64_t m = 8 * n;
      const std::int64_t reps = ctx.repsOr(300);
      std::vector<double> t1;
      std::vector<double> t2;
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        core::SimOptions o;
        o.engine = core::SimOptions::EngineKind::Naive;
        o.seed = rng::streamSeed(ctx.seed ^ static_cast<std::uint64_t>(n), rep);
        o.gap = 1;
        t1.push_back(core::balancingTime(config::allInOne(n, m), o));
        o.seed = rng::streamSeed(ctx.seed ^ static_cast<std::uint64_t>(n) ^ 0xabc, rep);
        o.gap = 2;
        t2.push_back(core::balancingTime(config::allInOne(n, m), o));
      }
      const auto s1 = stats::summarize(t1);
      const auto s2 = stats::summarize(t2);
      const auto mwu = stats::mannWhitneyU(t1, t2);
      table.row()
          .cell(n)
          .cell(m)
          .cell(reps)
          .cell(s1.mean)
          .cell(s2.mean)
          .cell(mwu.pValue, 3)
          .cell(mwu.pValue > 0.01 ? "indistinguishable" : "SEPARATED (unexpected)");
    }
    ctx.emitTable(table,
                  "[E10-A] RLS (>=) vs strict variant (>): identical balancing-time "
                  "distribution (Section 3 remark)");
  }

  // ----------------------------------------------------- (B) CRS vs RLS
  {
    Table table({"n", "m", "reps", "RLS activations", "RLS time", "CRS pair-draws",
                 "CRS final disc", "draws/activations"});
    for (const std::int64_t n : {16, 32, 64, 128}) {
      const std::int64_t m = 4 * n;
      const std::int64_t reps = ctx.repsOr(15);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 999), 4,
          [&](std::int64_t, std::uint64_t seed) {
            rng::Xoshiro256pp initEng(seed);
            const auto start = config::greedyD(n, m, 2, initEng);
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Naive;
            o.seed = seed ^ 0x5555;
            const auto r = core::balance(start, o);

            protocols::CrsProtocol crs(n, m, seed ^ 0x9999);
            const std::int64_t draws = crs.runUntilStable(200'000'000);
            return std::vector<double>{static_cast<double>(r.activations), r.time,
                                       static_cast<double>(draws),
                                       crs.metrics().discrepancy};
          }, ctx.pool());
      const auto act = result.summary(0);
      const auto time = result.summary(1);
      const auto draws = result.summary(2);
      const auto disc = result.summary(3);
      table.row()
          .cell(n)
          .cell(m)
          .cell(reps)
          .cell(act.mean, 5)
          .cell(time.mean)
          .cell(draws.mean, 5)
          .cell(disc.mean, 3)
          .cell(draws.mean / act.mean, 3);
    }
    ctx.emitTable(table,
                  "[E10-B] from a two-choice placement: RLS to perfect balance vs CRS "
                  "to local stability (the ratio grows with n: CRS pays a larger "
                  "polynomial exponent, Section 2)");
  }

  // ------------------------------------------- (C) synchronous baselines
  {
    Table table({"protocol", "n", "m", "reps", "rounds to 2ln(n)-band", "final disc",
                 "RLS time to same band"});
    const std::int64_t n = ctx.sized(128);
    for (const std::int64_t ratio : {16, 256}) {
      const std::int64_t m = n * ratio;
      const auto band = static_cast<std::int64_t>(std::ceil(2.0 * std::log(static_cast<double>(n))));
      const std::int64_t reps = ctx.repsOr(15);

      // RLS reference: continuous time to the same band.
      const auto rlsSamples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(ratio),
          [&](std::int64_t, std::uint64_t seed) {
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed;
            return core::balancingTime(config::allInOne(n, m), o, sim::Target::xBalanced(band));
          }, ctx.pool());
      const double rlsTime = stats::summarize(rlsSamples).mean;

      struct Row {
        const char* name;
        std::function<std::unique_ptr<protocols::RoundProtocol>(std::uint64_t)> make;
      };
      const auto init = config::allInOne(n, m);
      const Row rows[] = {
          {"selfish [4]",
           [&](std::uint64_t seed) {
             return std::unique_ptr<protocols::RoundProtocol>(
                 new protocols::SelfishRerouting(init, seed));
           }},
          {"EDM global-avg [10]",
           [&](std::uint64_t seed) {
             return std::unique_ptr<protocols::RoundProtocol>(
                 new protocols::EdmGlobalRerouting(init, seed));
           }},
          {"threshold T=avg [1]",
           [&](std::uint64_t seed) {
             return std::unique_ptr<protocols::RoundProtocol>(
                 new protocols::ThresholdProtocol(init, seed, m / n, 0.5));
           }},
      };
      for (const auto& row : rows) {
        const auto result = runner::runReplications(
            reps, ctx.seed ^ static_cast<std::uint64_t>(ratio * 31), 2,
            [&](std::int64_t, std::uint64_t seed) {
              auto proto = row.make(seed);
              const std::int64_t rounds = proto->runUntilBalanced(band, 2000);
              return std::vector<double>{static_cast<double>(rounds),
                                         proto->metrics().discrepancy};
            }, ctx.pool());
        const auto rounds = result.summary(0);
        const auto disc = result.summary(1);
        table.row()
            .cell(row.name)
            .cell(n)
            .cell(m)
            .cell(reps)
            .cell(rounds.mean, 4)
            .cell(disc.mean, 3)
            .cell(rlsTime, 4);
      }
    }
    ctx.emitTable(
        table,
        "[E10-C] synchronous baselines from the worst case (rounds = -1 means the band "
        "was not reached: the protocol stalls in a wider stationary band). One RLS time "
        "unit ~ one synchronous round (m expected activations).");
  }

  // ---------------------------- (D) self-stabilizing repeated b-i-b [2]
  {
    Table table({"n (= m)", "reps", "stationary max load", "3 ln n / ln ln n", "RLS final max"});
    for (const std::int64_t n : {ctx.sized(256), ctx.sized(1024)}) {
      const std::int64_t reps = ctx.repsOr(10);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 77), 2,
          [&](std::int64_t, std::uint64_t seed) {
            protocols::RepeatedBallsIntoBins p(config::allInOne(n, n), seed);
            for (std::int64_t r = 0; r < 3 * n; ++r) p.round();  // drain + stabilize
            double maxSum = 0.0;
            const int samplesPerRun = 50;
            for (int s = 0; s < samplesPerRun; ++s) {
              for (int r = 0; r < 4; ++r) p.round();
              maxSum += static_cast<double>(p.metrics().maxLoad);
            }
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed ^ 0x777;
            const auto rls = core::balance(config::allInOne(n, n), o);
            return std::vector<double>{maxSum / samplesPerRun,
                                       static_cast<double>(rls.finalState.maxLoad)};
          }, ctx.pool());
      const double lnN = std::log(static_cast<double>(n));
      table.row()
          .cell(n)
          .cell(reps)
          .cell(result.summary(0).mean, 4)
          .cell(3.0 * lnN / std::log(lnN), 4)
          .cell(result.summary(1).mean, 3);
    }
    ctx.emitTable(table,
                  "[E10-D] self-stabilizing repeated balls-into-bins [2] at m = n: it "
                  "churns forever in an O(log n / log log n)-max-load band, while RLS "
                  "terminates at max load 1");
  }
}

}  // namespace

void registerBaselines(ScenarioRegistry& r) {
  r.add({"e10_baselines",
         "Section 2 baselines: strict-RLS, CRS [9], selfish [4], EDM [10], threshold [1]",
         "Section 2", runBaselines});
}

}  // namespace rlslb::scenario::builtin
