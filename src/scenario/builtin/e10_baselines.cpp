// e10_baselines -- the related-work baselines of Section 2, quantitatively.
//
// (A) RLS vs the strict-inequality variant of [Goldberg'04, Ganesh+'12]:
//     the paper remarks the balancing times coincide exactly; the table
//     reports both means and a Mann-Whitney p-value (must NOT separate).
// (B) Local search from a two-choice start: RLS activations to perfect
//     balance vs CRS [9] pair-draws to local stability. Section 2: RLS
//     needs O(n^2) activations, CRS n^{O(1)} draws with a larger exponent.
// (C) Synchronous protocols from the worst case: rounds to reach a
//     logarithmic band for selfish rerouting [4], EDM global-average [10],
//     and threshold [1], next to RLS's continuous time (one time unit ~ one
//     round of m expected activations). Shows the knowledge/synchrony
//     trade-off the paper discusses.
// (D) Self-stabilizing repeated balls-into-bins [2] at m = n.
#include <cmath>
#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "process/registry.hpp"
#include "rng/xoshiro256pp.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/summary.hpp"
#include "stats/tests.hpp"
#include "util/assert.hpp"
#include "util/parse.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runBaselines(ScenarioContext& ctx) {
  // Baseline protocols are constructed through the process registry (one
  // construction path for every dynamic); register before the parallel
  // replication sweeps so the registry is read-only under the pool.
  process::registerBuiltinProcesses();

  // `process=` filters the synchronous roster of section (C), e.g.
  //   rlslb run e10_baselines process=threshold
  const std::string processFilter = ctx.params.getString("process", "");

  // ------------------------------------------------ (A) strict variant
  {
    Table table({"n", "m", "reps", "E[T] gap=1", "E[T] gap=2", "MWU p-value", "verdict"});
    for (const std::int64_t n : {ctx.sized(64), ctx.sized(256)}) {
      const std::int64_t m = 8 * n;
      const std::int64_t reps = ctx.repsOr(300);
      std::vector<double> t1;
      std::vector<double> t2;
      for (std::int64_t rep = 0; rep < reps; ++rep) {
        core::SimOptions o;
        o.engine = core::SimOptions::EngineKind::Naive;
        o.seed = rng::streamSeed(ctx.seed ^ static_cast<std::uint64_t>(n), rep);
        o.gap = 1;
        t1.push_back(core::balancingTime(config::allInOne(n, m), o));
        o.seed = rng::streamSeed(ctx.seed ^ static_cast<std::uint64_t>(n) ^ 0xabc, rep);
        o.gap = 2;
        t2.push_back(core::balancingTime(config::allInOne(n, m), o));
      }
      const auto s1 = stats::summarize(t1);
      const auto s2 = stats::summarize(t2);
      const auto mwu = stats::mannWhitneyU(t1, t2);
      table.row()
          .cell(n)
          .cell(m)
          .cell(reps)
          .cell(s1.mean)
          .cell(s2.mean)
          .cell(mwu.pValue, 3)
          .cell(mwu.pValue > 0.01 ? "indistinguishable" : "SEPARATED (unexpected)");
    }
    ctx.emitTable(table,
                  "[E10-A] RLS (>=) vs strict variant (>): identical balancing-time "
                  "distribution (Section 3 remark)");
  }

  // ----------------------------------------------------- (B) CRS vs RLS
  {
    Table table({"n", "m", "reps", "RLS activations", "RLS time", "CRS pair-draws",
                 "CRS final disc", "draws/activations"});
    for (const std::int64_t n : {16, 32, 64, 128}) {
      const std::int64_t m = 4 * n;
      const std::int64_t reps = ctx.repsOr(15);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 999), 4,
          [&](std::int64_t, std::uint64_t seed) {
            rng::Xoshiro256pp initEng(seed);
            const auto start = config::greedyD(n, m, 2, initEng);
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Naive;
            o.seed = seed ^ 0x5555;
            const auto r = core::balance(start, o);

            // CRS through the registry (uses only the (n, m) shape; its
            // candidate pairs and Greedy[2] placement are seed-derived).
            auto crs = process::makeProcess("crs", config::allInOne(n, m), seed ^ 0x9999);
            process::RunLimits crsLimits;
            crsLimits.maxEvents = 200'000'000;
            const auto cr = process::run(*crs, process::Target::equilibrium(), crsLimits);
            const double draws = cr.reachedTarget ? cr.clock.value : -1.0;
            return std::vector<double>{static_cast<double>(r.activations), r.time, draws,
                                       cr.finalState.discrepancy()};
          }, ctx.pool());
      const auto act = result.summary(0);
      const auto time = result.summary(1);
      const auto draws = result.summary(2);
      const auto disc = result.summary(3);
      table.row()
          .cell(n)
          .cell(m)
          .cell(reps)
          .cell(act.mean, 5)
          .cell(time.mean)
          .cell(draws.mean, 5)
          .cell(disc.mean, 3)
          .cell(draws.mean / act.mean, 3);
    }
    ctx.emitTable(table,
                  "[E10-B] from a two-choice placement: RLS to perfect balance vs CRS "
                  "to local stability (the ratio grows with n: CRS pays a larger "
                  "polynomial exponent, Section 2)");
  }

  // ------------------------------------------- (C) synchronous baselines
  {
    Table table({"protocol", "n", "m", "reps", "rounds to 2ln(n)-band", "final disc",
                 "RLS time to same band"});
    const std::int64_t n = ctx.sized(128);
    for (const std::int64_t ratio : {16, 256}) {
      const std::int64_t m = n * ratio;
      const auto band = static_cast<std::int64_t>(std::ceil(2.0 * std::log(static_cast<double>(n))));
      const std::int64_t reps = ctx.repsOr(15);

      // RLS reference: continuous time to the same band.
      const auto rlsSamples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(ratio),
          [&](std::int64_t, std::uint64_t seed) {
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed;
            return core::balancingTime(config::allInOne(n, m), o, sim::Target::xBalanced(band));
          }, ctx.pool());
      const double rlsTime = stats::summarize(rlsSamples).mean;

      // Synchronous baselines as registry kinds; `process=` selects a
      // subset (comma list). The threshold kind's default is exactly the
      // historical T = floor(m/n), p = 0.5.
      struct Row {
        const char* name;
        const char* kind;
      };
      const Row allRows[] = {
          {"selfish [4]", "selfish"},
          {"EDM global-avg [10]", "edm"},
          {"threshold T=avg [1]", "threshold"},
      };
      std::vector<Row> rows;
      if (processFilter.empty()) {
        rows.assign(std::begin(allRows), std::end(allRows));
      } else {
        for (const std::string& kind : util::splitCsv(processFilter)) {
          bool known = false;
          for (const Row& row : allRows) {
            if (kind == row.kind) {
              rows.push_back(row);
              known = true;
            }
          }
          RLSLB_ASSERT_MSG(known,
                           "process= must name synchronous kinds from "
                           "selfish|edm|threshold (comma-separated)");
        }
      }
      const auto init = config::allInOne(n, m);
      for (const auto& row : rows) {
        const auto result = runner::runReplications(
            reps, ctx.seed ^ static_cast<std::uint64_t>(ratio * 31), 2,
            [&](std::int64_t, std::uint64_t seed) {
              auto proto = process::makeProcess(row.kind, init, seed);
              process::RunLimits protoLimits;
              protoLimits.maxEvents = 2000;
              const auto r =
                  process::run(*proto, process::Target::xBalanced(band), protoLimits);
              const double rounds = r.reachedTarget ? r.clock.value : -1.0;
              return std::vector<double>{rounds, r.finalState.discrepancy()};
            }, ctx.pool());
        const auto rounds = result.summary(0);
        const auto disc = result.summary(1);
        table.row()
            .cell(row.name)
            .cell(n)
            .cell(m)
            .cell(reps)
            .cell(rounds.mean, 4)
            .cell(disc.mean, 3)
            .cell(rlsTime, 4);
      }
    }
    ctx.emitTable(
        table,
        "[E10-C] synchronous baselines from the worst case (rounds = -1 means the band "
        "was not reached: the protocol stalls in a wider stationary band). One RLS time "
        "unit ~ one synchronous round (m expected activations).");
  }

  // ---------------------------- (D) self-stabilizing repeated b-i-b [2]
  {
    Table table({"n (= m)", "reps", "stationary max load", "3 ln n / ln ln n", "RLS final max"});
    for (const std::int64_t n : {ctx.sized(256), ctx.sized(1024)}) {
      const std::int64_t reps = ctx.repsOr(10);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 77), 2,
          [&](std::int64_t, std::uint64_t seed) {
            auto p = process::makeProcess("repeated", config::allInOne(n, n), seed);
            for (std::int64_t r = 0; r < 3 * n; ++r) p->advance();  // drain + stabilize
            double maxSum = 0.0;
            const int samplesPerRun = 50;
            for (int s = 0; s < samplesPerRun; ++s) {
              for (int r = 0; r < 4; ++r) p->advance();
              maxSum += static_cast<double>(p->state().maxLoad);  // O(1) via the tracker
            }
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed ^ 0x777;
            const auto rls = core::balance(config::allInOne(n, n), o);
            return std::vector<double>{maxSum / samplesPerRun,
                                       static_cast<double>(rls.finalState.maxLoad)};
          }, ctx.pool());
      const double lnN = std::log(static_cast<double>(n));
      table.row()
          .cell(n)
          .cell(reps)
          .cell(result.summary(0).mean, 4)
          .cell(3.0 * lnN / std::log(lnN), 4)
          .cell(result.summary(1).mean, 3);
    }
    ctx.emitTable(table,
                  "[E10-D] self-stabilizing repeated balls-into-bins [2] at m = n: it "
                  "churns forever in an O(log n / log log n)-max-load band, while RLS "
                  "terminates at max load 1");
  }
}

}  // namespace

void registerBaselines(ScenarioRegistry& r) {
  r.add({"e10_baselines",
         "Section 2 baselines: strict-RLS, CRS [9], selfish [4], EDM [10], threshold [1]",
         "Section 2", runBaselines,
         {{"process", "string", "(all three)",
           "filter section (C)'s synchronous roster: comma list of selfish|edm|threshold"}}});
}

}  // namespace rlslb::scenario::builtin
