// ablation -- design ablations for the choices called out in
// docs/EXPERIMENTS.md:
//
//  (a) engine choice -- wall-clock of naive vs jump vs hybrid on workloads
//      with opposite shapes (all-in-one: 2 levels; staircase: many levels),
//      with the measured mean T printed alongside to confirm all engines
//      sample the same distribution while differing wildly in cost;
//  (b) hybrid switch threshold -- sweep of the #distinct-loads threshold;
//  (c) gap parameter accounting -- the strict variant performs no neutral
//      moves, so it reports fewer successful moves for the *same* balancing
//      time (the lumped chains coincide).
//
// Tables (a) and (b) contain wall-clock cells, so they are emitted as
// "timing" records (machine-dependent); table (c) is deterministic.
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/summary.hpp"
#include "util/timer.hpp"

namespace rlslb::scenario::builtin {

namespace {

struct Workload {
  const char* name;
  config::Configuration configuration;
};

void runAblation(ScenarioContext& ctx) {
  // ctx.pool() is reused by every sweep below; wall-clock cells measure
  // the threaded harness, so ms/run scales with --threads.
  const std::int64_t n = ctx.params.getInt("n", ctx.sized(1024, 2));
  const std::vector<Workload> workloads = {
      {"all-in-one m=8n", config::allInOne(n, 8 * n)},
      {"staircase m~n^2/4", config::staircase(n, n * n / 4)},
      {"half-half x=16 m=32n", config::halfHalf(n, 32 * n, 16)},
  };

  // -------------------------------------------------- (a) engine choice
  {
    Table table({"workload", "engine", "reps", "mean T (low reps)", "wall ms/run"});
    for (const auto& w : workloads) {
      for (const auto kind : {core::SimOptions::EngineKind::Naive,
                              core::SimOptions::EngineKind::Jump,
                              core::SimOptions::EngineKind::Hybrid}) {
        // The single-engine runs on their bad workloads are the whole point
        // of the ablation, but keep their budgets sane.
        const std::int64_t reps =
            ctx.repsOr(kind == core::SimOptions::EngineKind::Hybrid ? 8 : 3);
        WallTimer wall;
        const auto samples = runner::runReplicationsScalar(
            reps, ctx.seed ^ static_cast<std::uint64_t>(kind == core::SimOptions::EngineKind::Naive),
            [&](std::int64_t, std::uint64_t seed) {
              core::SimOptions o;
              o.engine = kind;
              o.seed = seed;
              return core::balancingTime(w.configuration, o);
            },
            ctx.pool());
        const double ms = wall.millis() / static_cast<double>(reps);
        const char* name = kind == core::SimOptions::EngineKind::Naive   ? "naive"
                           : kind == core::SimOptions::EngineKind::Jump ? "jump"
                                                                        : "hybrid";
        table.row()
            .cell(w.name)
            .cell(name)
            .cell(reps)
            .cell(stats::summarize(samples).mean)
            .cell(ms, 4);
      }
    }
    ctx.emitTimingTable(table,
                        "[ablation-a] same E[T] per workload across engines (exactness); "
                        "wall-clock shows where each engine wins");
  }

  // ----------------------------------------- (b) hybrid threshold sweep
  {
    Table table({"workload", "threshold", "mean T (low reps)", "wall ms/run"});
    for (const auto& w : workloads) {
      for (const std::int64_t threshold : {8, 32, 96, 512, 4096}) {
        const std::int64_t reps = ctx.repsOr(6);
        WallTimer wall;
        const auto samples = runner::runReplicationsScalar(
            reps, ctx.seed ^ static_cast<std::uint64_t>(threshold),
            [&](std::int64_t, std::uint64_t seed) {
              core::SimOptions o;
              o.engine = core::SimOptions::EngineKind::Hybrid;
              o.levelThreshold = threshold;
              o.seed = seed;
              return core::balancingTime(w.configuration, o);
            },
            ctx.pool());
        table.row()
            .cell(w.name)
            .cell(threshold)
            .cell(stats::summarize(samples).mean)
            .cell(wall.millis() / static_cast<double>(reps), 4);
      }
    }
    ctx.emitTimingTable(table,
                        "[ablation-b] hybrid switch threshold (#distinct loads); the default "
                        "96 should be near the flat bottom for every workload");
  }

  // ------------------------------------------------- (c) gap accounting
  {
    Table table({"gap", "reps", "E[T]", "mean activations", "mean moves"});
    const auto init = config::allInOne(ctx.sized(256), 8 * ctx.sized(256));
    for (const int gap : {1, 2}) {
      const std::int64_t reps = ctx.repsOr(50);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ static_cast<std::uint64_t>(gap), 3,
          [&](std::int64_t, std::uint64_t seed) {
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Naive;
            o.gap = gap;
            o.seed = seed;
            const auto r = core::balance(init, o);
            return std::vector<double>{r.time, static_cast<double>(r.activations),
                                       static_cast<double>(r.moves)};
          },
          ctx.pool());
      table.row()
          .cell(gap)
          .cell(reps)
          .cell(result.summary(0).mean)
          .cell(result.summary(1).mean, 5)
          .cell(result.summary(2).mean, 5);
    }
    ctx.emitTable(table,
                  "[ablation-c] '>=' vs strict '>': same E[T] and activations, fewer "
                  "counted moves for the strict variant (no neutral moves)");
  }
}

}  // namespace

void registerAblation(ScenarioRegistry& r) {
  r.add({"ablation", "design ablations: engine choice, hybrid threshold, gap",
         "docs/EXPERIMENTS.md ablations", runAblation,
         {{"n", "int", "1024 (scaled, even)", "bins"}}});
}

}  // namespace rlslb::scenario::builtin
