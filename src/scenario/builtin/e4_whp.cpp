// e4_whp -- the with-high-probability bound: w.h.p. T = O(ln n + ln(n)*n^2/m).
//
// Measures the full distribution of T (quantiles and bootstrap CIs on p99)
// across n, normalizing by the w.h.p. budget B(n) = ln n * (1 + n^2/m).
// Theorem 1 predicts the normalized quantile columns stay bounded (in fact
// shrink modestly) as n grows, and the tail beyond the budget decays like
// n^{-Omega(1)} (Lemmas 6/7: each budget-sized epoch independently succeeds
// with constant probability).
#include <cmath>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "rng/xoshiro256pp.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/bootstrap.hpp"
#include "stats/summary.hpp"
#include "util/format.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runWhp(ScenarioContext& ctx) {
  Table table({"n", "m/n", "reps", "mean", "p50", "p90", "p99", "p99 ci95", "max",
               "B = ln n*(1+n^2/m)", "p99/B", "P(T > B)"});
  for (const std::int64_t n : {ctx.sized(128), ctx.sized(512), ctx.sized(2048)}) {
    for (const std::int64_t ratio : {4, 32}) {
      const std::int64_t m = n * ratio;
      const std::int64_t reps = ctx.repsOr(400);
      const auto samples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 7 + ratio),
          [&](std::int64_t, std::uint64_t seed) {
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed;
            return core::balancingTime(config::allInOne(n, m), o);
          },
          ctx.pool());
      const auto s = stats::summarize(samples);
      const double lnN = std::log(static_cast<double>(n));
      const double budget =
          lnN * (1.0 + static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(m));
      rng::Xoshiro256pp bootEng(ctx.seed + 17);
      const auto p99Ci = stats::bootstrapCi(
          samples, [](const std::vector<double>& v) { return stats::quantile(v, 0.99); }, 300,
          0.95, bootEng);
      std::int64_t exceed = 0;
      for (double t : samples) exceed += t > budget;
      table.row()
          .cell(n)
          .cell(ratio)
          .cell(reps)
          .cell(s.mean)
          .cell(s.median)
          .cell(s.p90)
          .cell(s.p99)
          .cell(formatCi(p99Ci.lo, p99Ci.hi))
          .cell(s.max)
          .cell(budget, 4)
          .cell(s.p99 / budget, 3)
          .cell(static_cast<double>(exceed) / static_cast<double>(reps), 3);
    }
  }
  ctx.emitTable(table,
                "[E4] tail of the balancing time from the all-in-one start "
                "(p99/B bounded, exceedance probability small and shrinking in n)");
}

}  // namespace

void registerWhp(ScenarioRegistry& r) {
  r.add({"e4_whp", "Theorem 1 w.h.p. bound: tail of T vs ln(n)*(1 + n^2/m)",
         "Theorem 1; Lemmas 6, 7", runWhp});
}

}  // namespace rlslb::scenario::builtin
