// e5_phases -- E5/E6/E7: the three analysis phases of Section 6.
//
// Phase 1 (Lemmas 10-13): any start -> O(ln n)-balanced in O(ln n) time.
// Phase 2 (Lemmas 14-16): O(ln n)-balanced -> 1-balanced in O(n/avg).
// Phase 3 (Lemma 17):     1-balanced -> perfect in O(n/avg).
//
// One PhaseTracker splits each worst-case trajectory at disc thresholds
// {avg/2, 8 ln n, 1, perfect}; the table reports each phase's duration
// normalized by its lemma's prediction. Two sub-experiments check the
// finer structure: the Lemma 13 doubling trick (disc x -> 2 sqrt(x ln n)
// within time ln((avg+x)/(avg-x))) and the Lemma 15 overload decay (the
// number of overloaded balls falls from Theta(n ln n) to n within
// O((ln n)^2 / avg) time).
#include <cmath>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "sim/probes.hpp"
#include "stats/summary.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runPhases(ScenarioContext& ctx) {
  // --------------------------------------------------------- E5+E6+E7
  {
    Table table({"n", "avg", "reps", "phase1", "/ln n", "phase2", "/(n/avg)", "phase3",
                 "/(n/avg)", "total"});
    struct Cell {
      std::int64_t n, avg;
    };
    for (const Cell c : {Cell{ctx.sized(256, 2), 8}, Cell{ctx.sized(1024, 2), 8},
                         Cell{ctx.sized(4096, 2), 8}, Cell{ctx.sized(1024, 2), 64}}) {
      const std::int64_t n = c.n;
      const std::int64_t m = n * c.avg;
      const double lnN = std::log(static_cast<double>(n));
      const auto logBand = static_cast<std::int64_t>(std::ceil(8.0 * lnN));
      const std::int64_t reps = ctx.repsOr(25);
      const auto result = runner::runReplications(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 5 + c.avg), 4,
          [&](std::int64_t, std::uint64_t seed) {
            sim::PhaseTracker tracker({logBand, 1});
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed;
            const auto r =
                core::balance(config::allInOne(n, m), o, sim::Target::perfect(), {}, &tracker);
            const double t1 = tracker.hitTime(0);
            const double t2 = tracker.hitTime(1);
            return std::vector<double>{t1, t2 - t1, r.time - t2, r.time};
          }, ctx.pool());
      const auto p1 = result.summary(0);
      const auto p2 = result.summary(1);
      const auto p3 = result.summary(2);
      const auto total = result.summary(3);
      const double nOverAvg = static_cast<double>(n) / static_cast<double>(c.avg);
      table.row()
          .cell(n)
          .cell(c.avg)
          .cell(reps)
          .cell(p1.mean)
          .cell(p1.mean / lnN, 3)
          .cell(p2.mean)
          .cell(p2.mean / nOverAvg, 3)
          .cell(p3.mean)
          .cell(p3.mean / nOverAvg, 3)
          .cell(total.mean);
    }
    ctx.emitTable(table,
                  "[E5-E7] phase durations from all-in-one; normalized columns must "
                  "stay O(1) as n grows (phase thresholds: 8 ln n, 1, perfect)");
  }

  // ------------------------------------------------------ Lemma 13 shrink
  {
    Table table({"n", "avg", "x", "target 2*sqrt(x ln n)", "reps", "mean t_x",
                 "ln((avg+x)/(avg-x))", "ratio"});
    const std::int64_t n = ctx.sized(1024, 2);
    const std::int64_t avg = 256;  // avg > 16 ln n: the "large avg" regime
    const std::int64_t m = n * avg;
    const double lnN = std::log(static_cast<double>(n));
    for (const std::int64_t x : {avg / 2, avg / 4, avg / 8}) {
      const auto target =
          static_cast<std::int64_t>(std::ceil(2.0 * std::sqrt(static_cast<double>(x) * lnN)));
      const std::int64_t reps = ctx.repsOr(20);
      const auto samples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(x),
          [&](std::int64_t, std::uint64_t seed) {
            sim::PhaseTracker tracker({target});
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed;
            sim::RunLimits limits;
            limits.maxTime = 50.0 * lnN;  // safety; Lemma 13 needs far less
            core::balance(config::halfHalf(n, m, x), o, sim::Target::xBalanced(target), limits,
                          &tracker);
            return tracker.hitTime(0);
          }, ctx.pool());
      const auto s = stats::summarize(samples);
      const double predicted = std::log(static_cast<double>(avg + x)) -
                               std::log(static_cast<double>(avg - x));
      table.row()
          .cell(n)
          .cell(avg)
          .cell(x)
          .cell(target)
          .cell(reps)
          .cell(s.mean)
          .cell(predicted, 4)
          .cell(s.mean / predicted, 3);
    }
    ctx.emitTable(table,
                  "[E5/Lemma 13] one shrink step: from disc x to 2 sqrt(x ln n) within "
                  "~ln((avg+x)/(avg-x)) (ratio should be O(1), typically < 1: the lemma "
                  "waits for every ball's activation window)");
  }

  // ------------------------------------------------------ Lemma 15 decay
  {
    Table table({"n", "avg", "start disc", "reps", "t: overload n*disc -> n", "(ln n)^2/avg",
                 "ratio"});
    for (const std::int64_t n : {ctx.sized(1024, 2), ctx.sized(4096, 2)}) {
      const std::int64_t avg = 32;
      const std::int64_t m = n * avg;
      const double lnN = std::log(static_cast<double>(n));
      const auto x = static_cast<std::int64_t>(std::ceil(lnN));
      const std::int64_t reps = ctx.repsOr(20);
      const auto samples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 13),
          [&](std::int64_t, std::uint64_t seed) {
            // halfHalf(x): overloaded balls = x*n/2 > n; wait until <= n.
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Jump;
            o.seed = seed;
            auto engine = core::makeEngine(config::halfHalf(n, m, x), o);
            while (engine->state().overloadedBalls > n) {
              if (!engine->step()) break;
            }
            return engine->time();
          }, ctx.pool());
      const auto s = stats::summarize(samples);
      const double predicted = lnN * lnN / static_cast<double>(avg);
      table.row()
          .cell(n)
          .cell(avg)
          .cell(x)
          .cell(reps)
          .cell(s.mean)
          .cell(predicted, 4)
          .cell(s.mean / predicted, 3);
    }
    ctx.emitTable(table, "[E6/Lemma 15] overloaded-ball decay to n within O((ln n)^2/avg)");
  }
}

}  // namespace

void registerPhases(ScenarioRegistry& r) {
  r.add({"e5_phases", "Section 6 phase decomposition (Lemmas 10-17)",
         "Section 6; Lemmas 10-17", runPhases});
}

}  // namespace rlslb::scenario::builtin
