// serve_capacity -- the cluster-scale capacity-planning frontier sweep.
//
// Sweeps the serving subsystem across n (bins) x load factor (lambda/mu)
// x trace shape (workload/compose.hpp specs) under a memory budget and
// reports, per cell:
//   - a deterministic sweep table (final/mean/max gap, arrivals,
//     migrations, ok/skipped status) -- byte-identical for a fixed seed;
//   - a timing table and one {"type":"frontier"} JSONL record with the
//     wall-clock and memory measurements: events/sec, p99 ns/event,
//     resident state bytes, bytes per ball, peak RSS
//     (scripts/perf_report.py renders the frontier heatmap from these);
//   - cells whose predicted state would blow the budget_mb gate are
//     skipped deterministically (CompactAllocator::estimateBytes), with a
//     "skipped" row and a frontier record carrying the estimate.
//
// backend=compact (default) runs capacity::CompactAllocator under the
// sequential capacity::CapacityLoop; backend=dense runs the same cells
// through the dense OnlineAllocator + ShardedEventLoop. Cell seeds do not
// include the backend, so the two backends replay identical traces and --
// by the equivalence contract pinned in tests/test_capacity.cpp -- land on
// byte-identical deterministic tables; only the memory/timing columns
// differ. That is the bytes-per-ball before/after experiment in
// docs/EXPERIMENTS.md.
//
// Params: n_list (csv bins sweep), load_list (csv lambda/mu sweep; mu =
// lambda/L with lambda fixed at 1), traces (';'-separated compose specs),
// epb (events per expected ball, scaled), epoch, repair, d, resample,
// backend, budget_mb, conformance. The compact backend requires unit
// weights: hotspot factors must use weight 1.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "capacity/capacity_loop.hpp"
#include "capacity/compact_allocator.hpp"
#include "obs/memory.hpp"
#include "obs/monitor.hpp"
#include "rng/splitmix64.hpp"
#include "scenario/builtin/builtin.hpp"
#include "serve/event_loop.hpp"
#include "serve/online_allocator.hpp"
#include "util/assert.hpp"
#include "workload/compose.hpp"
#include "workload/generators.hpp"

namespace rlslb::scenario::builtin {

namespace {

std::vector<std::string> splitList(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    const std::string token =
        text.substr(start, end == std::string::npos ? std::string::npos : end - start);
    RLSLB_ASSERT_MSG(!token.empty(), "empty entry in a list param");
    out.push_back(token);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  RLSLB_ASSERT_MSG(!out.empty(), "list param must not be empty");
  return out;
}

/// Rough dense-backend footprint for the budget gate (FlatMap ball records
/// at <= 3/4 load plus per-bin vectors); the compact side uses the exact
/// CompactAllocator::estimateBytes.
std::int64_t denseEstimateBytes(std::int64_t bins, std::int64_t liveBalls) {
  return liveBalls * 56 + bins * 64;
}

struct CellResult {
  std::int64_t events = 0;
  std::int64_t epochs = 0;
  double wallSeconds = 0.0;
  std::int64_t arrivals = 0;
  std::int64_t migrations = 0;
  std::int64_t finalGap = 0;
  double meanGap = 0.0;
  std::int64_t maxGap = 0;
  double p99Ns = 0.0;
  std::int64_t stateBytes = 0;
  std::int64_t liveBalls = 0;
};

void runCapacity(ScenarioContext& ctx) {
  const std::vector<std::string> nTokens =
      splitList(ctx.params.getString("n_list", "1000000"), ',');
  const std::vector<std::string> loadTokens =
      splitList(ctx.params.getString("load_list", "8"), ',');
  const std::vector<std::string> traceSpecs =
      splitList(ctx.params.getString("traces", "poisson"), ';');
  const std::int64_t epb = ctx.params.getInt("epb", ctx.sized(4));
  const std::int64_t epochEvents = ctx.params.getInt("epoch", 1024);
  const int repair = static_cast<int>(ctx.params.getInt("repair", 4));
  const int d = static_cast<int>(ctx.params.getInt("d", 2));
  const double resample = ctx.params.getDouble("resample", 1.0);
  const std::string backend = ctx.params.getString("backend", "compact");
  const std::int64_t budgetMb = ctx.params.getInt("budget_mb", 2048);
  const bool conformance = ctx.params.getBool("conformance", ctx.conformanceDefault);
  RLSLB_ASSERT_MSG(backend == "compact" || backend == "dense",
                   "backend= must be compact or dense");
  RLSLB_ASSERT_MSG(epb >= 1 && epochEvents >= 1, "epb and epoch must be >= 1");

  std::vector<std::int64_t> nList;
  for (const std::string& t : nTokens) {
    const std::int64_t n = std::stoll(t);
    RLSLB_ASSERT_MSG(n >= 1, "n_list entries must be >= 1");
    nList.push_back(n);
  }
  std::vector<double> loadList;
  for (const std::string& t : loadTokens) {
    const double load = std::stod(t);
    RLSLB_ASSERT_MSG(load > 0.0, "load_list entries must be > 0");
    loadList.push_back(load);
  }
  std::vector<workload::ComposeSpec> specs;
  for (const std::string& t : traceSpecs) {
    workload::ComposeSpec spec;
    std::string error;
    const bool ok = workload::parseComposeSpec(t, &spec, &error);
    if (!ok) std::fprintf(stderr, "serve_capacity: bad traces= entry (%s)\n", error.c_str());
    RLSLB_ASSERT_MSG(ok, "traces= entry does not parse; see `rlslb traces`");
    for (const std::vector<workload::ComposeFactor>& term : spec.terms) {
      for (const workload::ComposeFactor& f : term) {
        RLSLB_ASSERT_MSG(f.kind != workload::ComposeFactor::Kind::kHotspot || f.c == 1.0,
                         "capacity sweeps run unit weights; use hotspot(period,size,1)");
      }
    }
    specs.push_back(std::move(spec));
  }

  // Conformance monitors bind to one (n, expected balls, epochs) shape at
  // install time, so they attach only when the sweep holds n and load
  // fixed (the CI smoke configuration); trace shape may still vary.
  const bool monitorable = nList.size() == 1 && loadList.size() == 1;
  if (conformance && !monitorable) {
    ctx.note("conformance monitors attach only to single-(n,load) capacity sweeps; "
             "disabled for this sweep");
  }
  const bool useMonitors = conformance && monitorable;
  if (useMonitors) {
    obs::ServeConformanceParams cp;
    cp.n = nList.front();
    cp.expectedBalls =
        static_cast<std::int64_t>(loadList.front() * static_cast<double>(nList.front()));
    cp.d = d;
    const std::int64_t cellEvents = epb * cp.expectedBalls;
    cp.totalEpochs = (cellEvents + epochEvents - 1) / epochEvents;
    obs::installServeMonitors(ctx.monitors, cp);
  }

  Table sweep({"n", "load", "trace", "backend", "events", "arrivals", "migrations",
               "final gap", "mean gap", "max gap", "status"});
  Table timing({"n", "load", "trace", "loop wall s", "events/sec", "p99 ns/event",
                "state MB", "bytes/ball", "peak RSS MB"});

  for (const std::int64_t n : nList) {
    for (const double load : loadList) {
      for (const workload::ComposeSpec& spec : specs) {
        const std::string traceName = spec.canonical();
        const auto expectedLive = static_cast<std::int64_t>(load * static_cast<double>(n));
        const std::int64_t events = epb * expectedLive;
        RLSLB_ASSERT_MSG(events >= 1, "cell has no events; raise epb or load");
        // Deterministic arrival-share heuristic for the budget gate: at
        // steady state the event mix is lambda*n arrivals vs
        // (mu + resample) * L * n departures/resamples per unit time.
        const double mu = 1.0 / load;
        const double arrivalShare = 1.0 / (1.0 + (mu + resample) * load);
        const auto ballsEverEstimate =
            expectedLive + static_cast<std::int64_t>(arrivalShare * static_cast<double>(events));
        const std::int64_t estimate =
            backend == "compact"
                ? capacity::CompactAllocator::estimateBytes(n, ballsEverEstimate, expectedLive)
                : denseEstimateBytes(n, expectedLive);
        const std::string loadText = report::formatJsonNumber(load);

        report::Json cell = report::Json::object();
        cell.set("n", n);
        cell.set("load_factor", load);
        cell.set("trace", traceName);
        cell.set("backend", backend);

        if (budgetMb > 0 && estimate > budgetMb * 1024 * 1024) {
          sweep.row().cell(n).cell(loadText).cell(traceName).cell(backend).cell(events)
              .cell(0).cell(0).cell(0).cell(0.0, 4).cell(0).cell("skipped");
          cell.set("skipped", true);
          cell.set("estimated_bytes", estimate);
          cell.set("budget_bytes", budgetMb * 1024 * 1024);
          if (ctx.sink != nullptr) ctx.sink->writeFrontier(ctx.activeScenario, cell);
          ctx.note("[capacity] skipped n=" + std::to_string(n) + " load=" + loadText +
                   " trace=" + traceName + ": estimated " +
                   std::to_string(estimate / (1024 * 1024)) + " MB > budget " +
                   std::to_string(budgetMb) + " MB");
          continue;
        }

        // Cell seed from the sweep coordinates only -- NOT the backend --
        // so compact and dense replay identical traces and streams.
        const std::uint64_t cellSeed = rng::streamSeed(
            ctx.seed, stableHash("capacity:" + std::to_string(n) + ":" + loadText +
                                 ":" + traceName));
        const std::uint64_t traceSeed = rng::streamSeed(cellSeed, stableHash("trace"));
        workload::OpenTraceOptions base;
        base.bins = n;
        base.arrivalRatePerBin = 1.0;
        base.departureRate = mu;
        base.resampleRate = resample;
        base.ballWeight = 1;
        base.maxEvents = events;
        workload::ComposedTrace trace(base, spec, traceSeed);

        const std::int64_t totalEpochs = (events + epochEvents - 1) / epochEvents;
        const std::int64_t warmupEpochs = totalEpochs / 4;
        if (useMonitors) ctx.monitors.beginRun();
        obs::MonitorSet* const monitors = useMonitors ? &ctx.monitors : nullptr;

        CellResult r;
        double gapSum = 0.0;
        std::int64_t gapEpochs = 0;
        std::vector<double> epochNs;
        const auto onEpoch = [&](const serve::EpochStats& s) {
          if (s.epoch >= warmupEpochs) {
            gapSum += static_cast<double>(s.gap());
            ++gapEpochs;
            if (s.gap() > r.maxGap) r.maxGap = s.gap();
          }
          if (s.events > 0) {
            epochNs.push_back(s.wallSeconds * 1e9 / static_cast<double>(s.events));
          }
        };

        if (backend == "compact") {
          capacity::CompactOptions opt;
          opt.bins = n;
          opt.arrivalChoices = d;
          capacity::CompactAllocator allocator(opt);
          capacity::CapacityLoopOptions loopOptions;
          loopOptions.epochEvents = epochEvents;
          loopOptions.repairMovesPerEpoch = repair;
          loopOptions.seed = cellSeed;
          loopOptions.metrics = &ctx.metrics;
          loopOptions.monitors = monitors;
          capacity::CapacityLoop loop(allocator, loopOptions);
          const capacity::CapacityLoop::RunResult run = loop.run(trace, onEpoch);
          r.events = run.events;
          r.epochs = run.epochs;
          r.wallSeconds = run.wallSeconds;
          r.arrivals = allocator.counters().arrivals;
          r.migrations =
              allocator.counters().migrations + allocator.counters().repairMigrations;
          r.finalGap = allocator.gap();
          r.stateBytes = allocator.residentBytes();
          r.liveBalls = allocator.liveBalls();
        } else {
          serve::AllocatorOptions opt;
          opt.bins = n;
          opt.arrivalChoices = d;
          serve::OnlineAllocator allocator(opt);
          serve::LoopOptions loopOptions;
          loopOptions.shards = static_cast<int>(ctx.params.getInt("shards", 1));
          loopOptions.epochEvents = epochEvents;
          loopOptions.repairMovesPerEpoch = repair;
          loopOptions.seed = cellSeed;
          loopOptions.metrics = &ctx.metrics;
          loopOptions.monitors = monitors;
          serve::ShardedEventLoop loop(allocator, loopOptions, ctx.pool());
          const serve::ShardedEventLoop::RunResult run = loop.run(trace, onEpoch);
          r.events = run.events;
          r.epochs = run.epochs;
          r.wallSeconds = run.wallSeconds;
          r.arrivals = allocator.counters().arrivals;
          r.migrations =
              allocator.counters().migrations + allocator.counters().repairMigrations;
          r.finalGap = allocator.gap();
          r.stateBytes = allocator.residentBytes();
          r.liveBalls = allocator.liveBalls();
        }
        r.meanGap = gapEpochs > 0 ? gapSum / static_cast<double>(gapEpochs) : 0.0;
        std::sort(epochNs.begin(), epochNs.end());
        r.p99Ns = epochNs.empty()
                      ? 0.0
                      : epochNs[static_cast<std::size_t>(
                            static_cast<double>(epochNs.size() - 1) * 0.99)];
        const double eventsPerSec =
            r.wallSeconds > 0.0 ? static_cast<double>(r.events) / r.wallSeconds : 0.0;
        const double bytesPerBall =
            r.liveBalls > 0
                ? static_cast<double>(r.stateBytes) / static_cast<double>(r.liveBalls)
                : 0.0;
        const std::int64_t peakRss = obs::peakRssBytes();

        sweep.row().cell(n).cell(loadText).cell(traceName).cell(backend).cell(r.events)
            .cell(r.arrivals).cell(r.migrations).cell(r.finalGap).cell(r.meanGap, 4)
            .cell(r.maxGap).cell("ok");
        timing.row().cell(n).cell(loadText).cell(traceName).cell(r.wallSeconds, 4)
            .cell(eventsPerSec, 6).cell(r.p99Ns, 4)
            .cell(static_cast<double>(r.stateBytes) / (1024.0 * 1024.0), 2)
            .cell(bytesPerBall, 2)
            .cell(static_cast<double>(peakRss) / (1024.0 * 1024.0), 2);

        cell.set("events", r.events);
        cell.set("epochs", r.epochs);
        cell.set("arrivals", r.arrivals);
        cell.set("live_balls", r.liveBalls);
        cell.set("final_gap", r.finalGap);
        cell.set("mean_gap", r.meanGap);
        cell.set("max_gap", r.maxGap);
        cell.set("events_per_sec", eventsPerSec);
        cell.set("p99_ns_event", r.p99Ns);
        cell.set("state_bytes", r.stateBytes);
        cell.set("bytes_per_ball", bytesPerBall);
        cell.set("peak_rss_bytes", peakRss);
        if (ctx.sink != nullptr) ctx.sink->writeFrontier(ctx.activeScenario, cell);
      }
    }
  }

  ctx.emitTable(sweep, "[capacity] frontier sweep, backend=" + backend +
                           " (deterministic gap/counter view; skipped = over budget_mb)");
  ctx.emitTimingTable(timing, "[capacity] frontier wall-clock and memory "
                              "(events/sec, p99 ns/event, resident state, bytes/ball)");
}

}  // namespace

void registerServeCapacity(ScenarioRegistry& r) {
  r.add({"serve_capacity",
         "capacity planning: n x load x trace frontier sweep of the compact serving "
         "backend under a memory budget",
         "cluster-scale capacity frontier (Section 7 outlook)",
         runCapacity,
         {{"n_list", "string", "1000000", "bins sweep (csv)"},
          {"load_list", "string", "8", "load factors lambda/mu to sweep (csv)"},
          {"traces", "string", "poisson",
           "';'-separated compose specs (workload algebra; see `rlslb traces`)"},
          {"epb", "int", "4 (scaled)", "events per expected ball (cell length)"},
          {"epoch", "int", "1024", "events per load snapshot"},
          {"repair", "int", "4", "RLS repair moves per epoch"},
          {"d", "int", "2", "arrival choices"},
          {"resample", "double", "1.0", "per-ball RLS clock rate"},
          {"backend", "string", "compact",
           "compact (CompactAllocator) or dense (OnlineAllocator) serving state"},
          {"shards", "int", "1", "dense-backend ownership shards (ignored for compact)"},
          {"budget_mb", "int", "2048",
           "skip cells whose predicted state exceeds this many MB (0 = no gate)"},
          {"conformance", "bool", "0 (run default)",
           "attach the serve monitor roster (single-(n,load) sweeps only)"}}});
}

}  // namespace rlslb::scenario::builtin
