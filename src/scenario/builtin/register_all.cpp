#include "scenario/builtin/builtin.hpp"

namespace rlslb::scenario {

void registerBuiltinScenarios(ScenarioRegistry& registry) {
  if (registry.find("e1_theorem1") != nullptr) return;  // idempotent
  builtin::registerTheorem1(registry);
  builtin::registerLowerbound(registry);
  builtin::registerWhp(registry);
  builtin::registerPhases(registry);
  builtin::registerDml(registry);
  builtin::registerBaselines(registry);
  builtin::registerExtensions(registry);
  builtin::registerGraphs(registry);
  builtin::registerOpensystem(registry);
  builtin::registerTrajectory(registry);
  builtin::registerAblation(registry);
  builtin::registerMicroSubstrate(registry);
  builtin::registerServe(registry);
  builtin::registerServeCapacity(registry);
  builtin::registerProcessCompare(registry);
}

}  // namespace rlslb::scenario
