// e1_theorem1 -- Theorem 1 upper bound: E[T] = O(ln n + n^2/m).
//
// Sweeps n and m/n from the all-in-one worst-case start, measures the mean
// time to perfect balance, and fits  E[T] ~ a*ln(n) + b*n^2/m + c.  The
// theorem (with its matching lower bounds) predicts a good linear fit with
// positive a and b and a roughly constant normalized column
// T / (ln n + n^2/m); the previous best bound [11] would instead need an
// extra ln(n) factor on the n^2/m term ((ln n)^2 + ln(n)*n^2/m), which
// would show up as the normalized column *growing* with n in the m = n
// rows. Paper-vs-measured notes live in docs/EXPERIMENTS.md (E1).
#include <cmath>
#include <vector>

#include "config/generators.hpp"
#include "core/rls.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/regression.hpp"
#include "stats/summary.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runTheorem1(ScenarioContext& ctx) {
  const std::vector<std::int64_t> ns = {ctx.sized(256), ctx.sized(512), ctx.sized(1024),
                                        ctx.sized(2048), ctx.sized(4096)};
  const std::vector<std::int64_t> ratios = {1, 8, 64};

  Table table({"n", "m/n", "reps", "E[T] (mean)", "ci95", "p99", "ln n", "n^2/m",
               "T/(ln n + n^2/m)"});
  std::vector<std::vector<double>> fitRows;
  std::vector<double> fitY;

  for (const std::int64_t n : ns) {
    for (const std::int64_t ratio : ratios) {
      const std::int64_t m = n * ratio;
      const std::int64_t reps = ctx.repsOr(30);
      const auto samples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 131 + ratio),
          [&](std::int64_t, std::uint64_t seed) {
            core::SimOptions o;
            o.engine = core::SimOptions::EngineKind::Hybrid;
            o.seed = seed;
            return core::balancingTime(config::allInOne(n, m), o);
          },
          ctx.pool());
      const auto s = stats::summarize(samples);
      const double lnN = std::log(static_cast<double>(n));
      const double n2m = static_cast<double>(n) * static_cast<double>(n) / static_cast<double>(m);
      table.row()
          .cell(n)
          .cell(ratio)
          .cell(reps)
          .cell(s.mean)
          .cell(s.ci95Half)
          .cell(s.p99)
          .cell(lnN, 3)
          .cell(n2m, 4)
          .cell(s.mean / (lnN + n2m), 3);
      fitRows.push_back({lnN, n2m, 1.0});
      fitY.push_back(s.mean);
    }
  }
  ctx.emitTable(table, "[E1] time to perfect balance from the all-in-one worst case");

  // Zero-intercept fit: both coefficients must come out positive and O(1).
  const auto fit = stats::olsFit(fitRows, fitY);
  if (fit.ok) {
    Table ft({"model", "a (ln n)", "b (n^2/m)", "c", "R^2"});
    ft.row()
        .cell("E[T] ~ a*ln n + b*n^2/m + c")
        .cell(fit.coefficients[0], 4)
        .cell(fit.coefficients[1], 4)
        .cell(fit.coefficients[2], 4)
        .cell(fit.r2, 5);
    ctx.emitTable(ft, "[E1] joint OLS fit (b must be positive and O(1))");
  }

  // The discriminating test against the pre-paper bound O((ln n)^2 +
  // ln(n)*n^2/m) [11]: on the endgame-dominated rows (m = n), regress
  // log T on log(n^2/m). Tightness predicts slope ~ 1; an extra ln n
  // factor would push the slope visibly above 1 (log(n*ln n)/log(n) at
  // these sizes is ~ 1.25).
  {
    std::vector<std::vector<double>> rows;
    std::vector<double> y;
    for (std::size_t i = 0; i < fitRows.size(); ++i) {
      const double n2m = fitRows[i][1];
      if (n2m >= 64.0) {  // endgame-dominated cells
        rows.push_back({std::log(n2m), 1.0});
        y.push_back(std::log(fitY[i]));
      }
    }
    const auto slopeFit = stats::olsFit(rows, y);
    if (slopeFit.ok) {
      Table st({"regime", "cells", "log-log slope", "R^2", "tight iff"});
      st.row()
          .cell("n^2/m >= 64")
          .cell(static_cast<std::int64_t>(rows.size()))
          .cell(slopeFit.coefficients[0], 4)
          .cell(slopeFit.r2, 4)
          .cell("slope ~ 1.0 (log-factor gap would inflate it)");
      ctx.emitTable(st, "[E1] tightness check vs the pre-paper bound of [11]");
    }
  }

  ctx.note("shape check: normalized column should be O(1) across all rows;");
  ctx.note("a log-factor gap (the pre-paper bound) would make m=n rows grow with n.\n");
}

}  // namespace

void registerTheorem1(ScenarioRegistry& r) {
  r.add({"e1_theorem1",
         "Theorem 1: E[T] = O(ln n + n^2/m) (tight) -- headline fit from the worst case",
         "Theorem 1; Section 5", runTheorem1});
}

}  // namespace rlslb::scenario::builtin
