// e14_opensystem -- the open-system setting of Ganesh et al. [11] (the work
// whose closed-system bound the paper tightens; see src/dynamic).
//
// Balls arrive at rate lambda per bin, depart at rate mu each, and migrate
// with RLS clocks while resident. The harness measures the stationary
// spread (max - min load):
//  (a) against the no-migration baseline at the same offered load --
//      RLS compresses the Poisson fluctuation band;
//  (b) across offered loads rho = lambda/mu;
//  (c) with two-choice arrivals (the [11]/[17] hybrid), which compose
//      with migration.
#include <vector>

#include "dynamic/open_system.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/summary.hpp"

namespace rlslb::scenario::builtin {

namespace {

/// Time-averaged spread after warmup.
double stationarySpread(dynamic::OpenSystem& sys, double warmup, int samples, double interval) {
  sys.runUntilTime(warmup);
  double total = 0.0;
  for (int i = 0; i < samples; ++i) {
    sys.runUntilTime(sys.time() + interval);
    total += static_cast<double>(sys.spread());
  }
  return total / samples;
}

void runOpensystem(ScenarioContext& ctx) {
  const std::int64_t n = ctx.params.getInt("n", ctx.sized(64));

  // ------------------------------------------- (a) migration on vs off
  {
    Table table({"mean load/bin", "reps", "spread (no RLS)", "spread (RLS)", "compression"});
    for (const double meanLoad : {8.0, 32.0, 128.0}) {
      const std::int64_t reps = ctx.repsOr(10);
      const double mu = 0.2;
      const double lambda = meanLoad * mu;  // lambda*n/mu = meanLoad*n

      auto measure = [&](bool rls, std::uint64_t salt) {
        return runner::runReplicationsScalar(
            reps, ctx.seed ^ salt ^ static_cast<std::uint64_t>(meanLoad),
            [&](std::int64_t, std::uint64_t seed) {
              dynamic::OpenSystemOptions opts;
              opts.arrivalRatePerBin = lambda;
              opts.departureRate = mu;
              // "No RLS" is modeled by gap so large no move ever fires.
              opts.gap = rls ? 1 : 1 << 30;
              dynamic::OpenSystem sys(n, opts, seed);
              return stationarySpread(sys, 30.0 / mu, 60, 0.5 / mu);
            }, ctx.pool());
      };
      const auto off = stats::summarize(measure(false, 0x1));
      const auto on = stats::summarize(measure(true, 0x2));
      table.row()
          .cell(meanLoad, 4)
          .cell(reps)
          .cell(off.mean, 4)
          .cell(on.mean, 4)
          .cell(off.mean / on.mean, 3);
    }
    ctx.emitTable(table,
                  "[E14a] stationary spread, n=64: RLS vs pure arrivals/departures "
                  "(no-RLS spread grows like sqrt(mean load); RLS holds an O(1)-ish band)");
  }

  // ----------------------------------------------- (b) offered-load sweep
  {
    Table table({"rho = lambda/mu", "mean balls", "reps", "spread (RLS)", "migrations/departure"});
    for (const double rho : {4.0, 16.0, 64.0}) {
      const std::int64_t reps = ctx.repsOr(10);
      const double mu = 0.2;
      const auto result = runner::runReplications(
          reps, ctx.seed ^ static_cast<std::uint64_t>(rho * 10), 3,
          [&](std::int64_t, std::uint64_t seed) {
            dynamic::OpenSystemOptions opts;
            opts.arrivalRatePerBin = rho * mu;
            opts.departureRate = mu;
            dynamic::OpenSystem sys(n, opts, seed);
            const double spread = stationarySpread(sys, 30.0 / mu, 60, 0.5 / mu);
            const auto& c = sys.counters();
            return std::vector<double>{spread, static_cast<double>(sys.numBalls()),
                                       c.departures > 0 ? static_cast<double>(c.migrations) /
                                                              static_cast<double>(c.departures)
                                                        : 0.0};
          }, ctx.pool());
      table.row()
          .cell(rho, 4)
          .cell(result.summary(1).mean, 5)
          .cell(reps)
          .cell(result.summary(0).mean, 4)
          .cell(result.summary(2).mean, 3);
    }
    ctx.emitTable(table,
                  "[E14b] offered-load sweep: the spread stays flat while the ball "
                  "population scales (migration clock is per ball, so repair capacity "
                  "scales with load)");
  }

  // ------------------------------------------- (c) arrival rule ablation
  {
    Table table({"arrival rule", "reps", "spread (no RLS)", "spread (RLS)"});
    for (const int d : {1, 2}) {
      const std::int64_t reps = ctx.repsOr(10);
      auto measure = [&](bool rls, std::uint64_t salt) {
        return runner::runReplicationsScalar(
            reps, ctx.seed ^ salt ^ static_cast<std::uint64_t>(d),
            [&](std::int64_t, std::uint64_t seed) {
              dynamic::OpenSystemOptions opts;
              opts.arrivalRatePerBin = 6.4;
              opts.departureRate = 0.2;
              opts.arrivalChoices = d;
              opts.gap = rls ? 1 : 1 << 30;
              dynamic::OpenSystem sys(n, opts, seed);
              return stationarySpread(sys, 150.0, 60, 2.5);
            }, ctx.pool());
      };
      const auto off = stats::summarize(measure(false, 0x3));
      const auto on = stats::summarize(measure(true, 0x4));
      table.row()
          .cell(d == 1 ? "uniform (1 choice)" : "lesser of 2 choices")
          .cell(reps)
          .cell(off.mean, 4)
          .cell(on.mean, 4);
    }
    ctx.emitTable(table,
                  "[E14c] two-choice arrivals vs uniform arrivals, with and without "
                  "migration (choices shrink the no-RLS band; with RLS both land in "
                  "the same small band)");
  }
}

}  // namespace

void registerOpensystem(ScenarioRegistry& r) {
  r.add({"e14_opensystem",
         "open-system RLS (the [11] setting): stationary spread under arrivals and departures",
         "Section 1 related work; Ganesh et al. [11]", runOpensystem,
         {{"n", "int", "64 (scaled)", "bins"}}});
}

}  // namespace rlslb::scenario::builtin
