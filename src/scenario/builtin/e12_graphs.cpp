// e12_graphs -- Section 7, third future direction: RLS on network topologies.
//
// A ball samples a uniform *neighbor* of its bin. The harness measures the
// time to perfect balance across topologies at fixed n and m/n, next to the
// (lazy-walk) spectral gap for the regular ones -- echoing the tau_mix-type
// dependence [6] proves for threshold protocols on graphs -- and sweeps n
// on the two extremes (cycle vs complete) to expose the scaling split.
#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include "config/generators.hpp"
#include "graph/graph_engine.hpp"
#include "graph/topology.hpp"
#include "runner/replication.hpp"
#include "scenario/builtin/builtin.hpp"
#include "stats/summary.hpp"

namespace rlslb::scenario::builtin {

namespace {

void runGraphs(ScenarioContext& ctx) {
  // ----------------------------------------- topology comparison, fixed n
  {
    const std::int64_t n = 256;  // fixed: hypercube and torus need shapes
    const std::int64_t m = 4 * n;
    rng::Xoshiro256pp topoEng(ctx.seed);
    struct Entry {
      std::string name;
      graph::Topology topo;
    };
    std::vector<Entry> entries;
    entries.push_back({"complete", graph::Topology::complete(n)});
    entries.push_back({"hypercube d=8", graph::Topology::hypercube(8)});
    entries.push_back({"random 4-regular", graph::Topology::randomRegular(n, 4, topoEng)});
    entries.push_back({"torus 16x16", graph::Topology::torus(16, 16)});
    entries.push_back({"cycle", graph::Topology::cycle(n)});

    Table table({"topology", "degree", "diameter", "spectral gap", "reps", "E[T]", "ci95",
                 "T * gap", "slowdown vs complete"});
    double completeMean = 0.0;
    for (const auto& e : entries) {
      rng::Xoshiro256pp gapEng(ctx.seed + 1);
      const double gap = e.topo.spectralGapRegular(4000, gapEng);
      const std::int64_t reps = ctx.repsOr(10);
      const auto samples = runner::runReplicationsScalar(
          reps, ctx.seed ^ stableHash(e.name),
          [&](std::int64_t, std::uint64_t seed) {
            graph::GraphRlsEngine engine(config::allInOne(n, m), e.topo, seed);
            const auto r = sim::runUntil(engine, sim::Target::perfect(),
                                         {.maxTime = 1e9, .maxEvents = 2'000'000'000});
            return r.time;
          }, ctx.pool());
      const auto s = stats::summarize(samples);
      if (e.name == "complete") completeMean = s.mean;
      table.row()
          .cell(e.name)
          .cell(e.topo.degree(0))
          .cell(e.topo.diameter())
          .cell(gap, 4)
          .cell(reps)
          .cell(s.mean)
          .cell(s.ci95Half)
          .cell(s.mean * gap, 3)
          .cell(s.mean / completeMean, 3);
    }
    ctx.emitTable(table,
                  "[E12] time to perfect balance, all-in-one start, n=256, m=4n "
                  "(ordering must follow mixing: complete < hypercube ~ expander < "
                  "torus < cycle)");
  }

  // ---------------------------------------------- scaling: cycle vs K_n
  {
    Table table({"n", "cycle E[T]", "cycle T/n^2", "complete E[T]", "complete T/(ln n + n/4)"});
    for (const std::int64_t n : {32, 64, 128}) {
      const std::int64_t m = 4 * n;
      const std::int64_t reps = ctx.repsOr(8);
      const auto cyc = graph::Topology::cycle(n);
      const auto kn = graph::Topology::complete(n);
      const auto cycSamples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n),
          [&](std::int64_t, std::uint64_t seed) {
            graph::GraphRlsEngine engine(config::allInOne(n, m), cyc, seed);
            return sim::runUntil(engine, sim::Target::perfect(),
                                 {.maxTime = 1e9, .maxEvents = 2'000'000'000})
                .time;
          }, ctx.pool());
      const auto knSamples = runner::runReplicationsScalar(
          reps, ctx.seed ^ static_cast<std::uint64_t>(n * 3),
          [&](std::int64_t, std::uint64_t seed) {
            graph::GraphRlsEngine engine(config::allInOne(n, m), kn, seed);
            return sim::runUntil(engine, sim::Target::perfect(),
                                 {.maxTime = 1e9, .maxEvents = 2'000'000'000})
                .time;
          }, ctx.pool());
      const double ct = stats::summarize(cycSamples).mean;
      const double kt = stats::summarize(knSamples).mean;
      table.row()
          .cell(n)
          .cell(ct)
          .cell(ct / (static_cast<double>(n) * static_cast<double>(n)), 4)
          .cell(kt)
          .cell(kt / (std::log(static_cast<double>(n)) + static_cast<double>(n) / 4.0), 4);
    }
    ctx.emitTable(table,
                  "[E12] scaling split: the cycle pays ~n^2 (diffusive) while the "
                  "complete graph stays ~ln n + n^2/m");
  }
}

}  // namespace

void registerGraphs(ScenarioRegistry& r) {
  r.add({"e12_graphs", "Section 7 extension: RLS on cycle/torus/hypercube/expander",
         "Section 7", runGraphs});
}

}  // namespace rlslb::scenario::builtin
