// process_compare -- run ANY registered dynamic on ANY start to ANY target,
// side by side. The scenario-layer face of the process registry: what used
// to need a hand-wired harness per (dynamic x workload) pair is one line:
//
//   rlslb run process_compare process=all
//   rlslb run process_compare process=rls,threshold,selfish start=staircase
//   rlslb run process_compare process=graph_rls topology=cycle n=128
//   rlslb run process_compare process=open lambda=3.2 mu=0.2 target=time horizon=200
//
// Process-specific knobs (gap, threshold, p, topology, speeds, weights,
// lambda, mu, d, degree, level_threshold) are forwarded to makeProcess by
// the declared spec; `rlslb describe <kind>` lists them.
//
// Targets: `auto` picks per capability -- Nash equilibrium / local
// stability where the dynamic has one (crs, speed_rls, weighted_rls), a
// fixed time horizon for open systems, the 2 ln n band for synchronous
// rounds (the e10 convention: a fixed-threshold protocol never reaches
// perfect balance), perfect balance for the RLS engines. Explicit targets
// override for every selected kind: target=perfect|x|equilibrium|time.
//
// The unified Clock makes the "E[at stop]" column comparable across
// families: continuous time, synchronous rounds and sequential steps all
// measure "one unit ~ m expected activations" up to each family's
// granularity (see process/process.hpp).
#include <cmath>
#include <string>
#include <vector>

#include "config/generators.hpp"
#include "obs/probe.hpp"
#include "process/registry.hpp"
#include "process/replicate.hpp"
#include "rng/splitmix64.hpp"
#include "rng/xoshiro256pp.hpp"
#include "scenario/builtin/builtin.hpp"
#include "scenario/harness.hpp"
#include "stats/summary.hpp"
#include "util/assert.hpp"
#include "util/parse.hpp"

namespace rlslb::scenario::builtin {

namespace {

config::Configuration makeStart(const std::string& start, std::int64_t n, std::int64_t m,
                                std::uint64_t seed) {
  if (start == "allinone") return config::allInOne(n, m);
  if (start == "balanced") return config::balanced(n, m);
  if (start == "staircase") return config::staircase(n, m);
  if (start == "powerlaw") return config::powerLaw(n, m, 1.2);
  rng::Xoshiro256pp eng(rng::streamSeed(seed, stableHash("start:" + start)));
  if (start == "random") return config::uniformRandom(n, m, eng);
  if (start == "greedy2") return config::greedyD(n, m, 2, eng);
  RLSLB_ASSERT_MSG(false,
                   "start= must be allinone|balanced|random|greedy2|staircase|powerlaw");
  return config::allInOne(n, m);
}

void runProcessCompare(ScenarioContext& ctx) {
  process::registerBuiltinProcesses();
  const process::ProcessRegistry& registry = process::ProcessRegistry::global();

  const std::int64_t n = ctx.params.getInt("n", ctx.sized(64, 2));
  const std::int64_t m = ctx.params.getInt("ratio", 8) * n;
  const std::string startName = ctx.params.getString("start", "allinone");
  const std::string targetName = ctx.params.getString("target", "auto");
  const std::int64_t x = ctx.params.getInt("x", 0);
  const double horizon = ctx.params.getDouble("horizon", 50.0);
  const std::int64_t budget = ctx.params.getInt("budget", 50'000'000);
  const std::int64_t reps = ctx.repsOr(10);
  const bool conformance = ctx.params.getBool("conformance", ctx.conformanceDefault);
  const bool instrument =
      ctx.params.getBool("probe", false) || ctx.trace != nullptr || conformance;

  std::vector<std::string> kinds = util::splitCsv(ctx.params.getString("process", "rls"));
  if (kinds.size() == 1 && kinds[0] == "all") {
    kinds.clear();
    for (const process::ProcessSpec* s : registry.list()) kinds.push_back(s->kind);
  }
  RLSLB_ASSERT_MSG(!kinds.empty(), "process= names no kinds");

  // Conformance: one roster serves every kind's instrumented replication;
  // beginRun() below separates the sub-runs (monotone-step invariants
  // reset, anomalies tagged with the run index).
  if (conformance) obs::installProcessMonitors(ctx.monitors, n, m);

  const config::Configuration start = makeStart(startName, n, m, ctx.seed);
  const auto band =
      static_cast<std::int64_t>(std::ceil(2.0 * std::log(static_cast<double>(n))));

  Table table({"process", "family", "clock", "target", "reps", "E[at stop]", "ci95",
               "E[events]", "E[moves]", "final disc", "reached"});
  for (const std::string& kind : kinds) {
    const process::ProcessSpec* spec = registry.find(kind);
    if (spec == nullptr) {
      // Route through make() for the roster-listing error message.
      (void)registry.make(kind, start, ctx.seed);
      continue;  // unreachable: make() throws on unknown kinds
    }
    const process::ProcessParams params = forwardProcessParams(*spec, ctx.params);

    // Probe instance: capabilities + clock kind drive the auto target. One
    // extra construction per kind, next to the `reps` constructions
    // runReplicated performs below -- negligible, and it keeps capability
    // truth in the adapters instead of duplicating it on the spec.
    const auto probe = registry.make(kind, start, ctx.seed, params);
    const process::Capabilities& caps = probe->capabilities();
    const bool rounds = probe->now().kind == process::Clock::Kind::Rounds;

    process::Target target = process::Target::perfect();
    process::RunLimits limits;
    limits.maxEvents = budget;
    std::string targetLabel;
    const std::string resolved =
        targetName != "auto"
            ? targetName
            : (caps.equilibrium ? "equilibrium"
                                : (caps.openSystem ? "time" : (rounds && x == 0 ? "band" : "x")));
    if (resolved == "perfect" || (resolved == "x" && x == 0)) {
      target = process::Target::perfect();
      targetLabel = "perfect";
    } else if (resolved == "x") {
      target = process::Target::xBalanced(x);
      targetLabel = "disc<=" + std::to_string(x);
    } else if (resolved == "band") {
      target = process::Target::xBalanced(band);
      targetLabel = "disc<=" + std::to_string(band) + " (2ln n)";
    } else if (resolved == "equilibrium") {
      RLSLB_ASSERT_MSG(caps.equilibrium, "target=equilibrium needs an equilibrium notion");
      target = process::Target::equilibrium();
      targetLabel = "equilibrium";
    } else if (resolved == "time") {
      target = process::Target::none();
      limits.maxTime = horizon;
      targetLabel = "t=" + std::to_string(static_cast<std::int64_t>(horizon));
    } else {
      RLSLB_ASSERT_MSG(false, "target= must be auto|perfect|x|equilibrium|time");
    }
    // Synchronous rounds burn one O(m) sweep per event; keep their budget
    // at the e10 scale rather than the continuous-event scale.
    if (rounds) limits.maxEvents = std::min<std::int64_t>(limits.maxEvents, 100'000);

    const auto runs = process::runReplicated(
        kind, start, params, target, limits, reps,
        ctx.seed ^ stableHash("process_compare:" + kind), ctx.pool(), registry);

    // Telemetry: probe=1 (or a driver-wide --trace-out) runs ONE extra
    // instrumented replication per kind through obs::ProcessProbe, so the
    // gated comparison reps above never pay the sampling cost. Exports
    // process.<kind>.{events,samples,gap,overloaded_balls,moves,clock} and,
    // when tracing, trajectory counter lanes for Perfetto.
    if (instrument) {
      const auto traced =
          registry.make(kind, start, ctx.seed ^ stableHash("probe:" + kind), params);
      obs::ProcessProbe::Options probeOptions;
      probeOptions.prefix = "process." + kind;
      if (conformance) {
        ctx.monitors.beginRun();
        probeOptions.monitors = &ctx.monitors;
      }
      obs::ProcessProbe telemetry(&ctx.metrics, ctx.trace, probeOptions);
      (void)process::run(*traced, target, limits, &telemetry);
      telemetry.finish(*traced);
    }

    std::vector<double> at(runs.size());
    std::vector<double> events(runs.size());
    std::vector<double> moves(runs.size());
    std::vector<double> disc(runs.size());
    double reachedCount = 0.0;
    for (std::size_t i = 0; i < runs.size(); ++i) {
      at[i] = runs[i].time;
      events[i] = static_cast<double>(runs[i].events);
      moves[i] = static_cast<double>(runs[i].moves);
      disc[i] = runs[i].finalState.discrepancy();
      if (runs[i].reachedTarget) reachedCount += 1.0;
    }
    const auto atS = stats::summarize(at);
    Table& row = table.row();
    row.cell(kind)
        .cell(spec->family)
        .cell(probe->now().unit())
        .cell(targetLabel)
        .cell(reps)
        .cell(atS.mean, 5)
        .cell(atS.ci95Half)
        .cell(stats::summarize(events).mean, 5)
        .cell(stats::summarize(moves).mean, 5)
        .cell(stats::summarize(disc).mean, 3);
    // Target::none() is never "reached"; a horizon run that completed is
    // not a failure, so don't print a misleading 0.
    if (target.kind == process::Target::Kind::None) {
      row.cell("n/a");
    } else {
      row.cell(reachedCount / static_cast<double>(runs.size()), 2);
    }
  }
  ctx.emitTable(table, "[process_compare] every dynamic through process::run, start=" +
                           startName + ", n=" + std::to_string(n) +
                           ", m=" + std::to_string(m) +
                           " (clock units per family: continuous time ~ rounds ~ m "
                           "expected activations; CRS uses only the (n, m) shape)");
}

}  // namespace

void registerProcessCompare(ScenarioRegistry& r) {
  r.add({"process_compare",
         "any registered dynamic on any start to any target via the process registry",
         "Section 2 baselines; Section 7 extensions; Ganesh et al. [11]", runProcessCompare,
         {{"process", "string", "rls",
           "comma list of process kinds, or 'all' (see `rlslb describe <kind>`)"},
          {"n", "int", "64 (scaled)", "bins"},
          {"ratio", "int", "8", "balls per bin (m = ratio * n)"},
          {"start", "string", "allinone",
           "initial shape: allinone|balanced|random|greedy2|staircase|powerlaw"},
          {"target", "string", "auto",
           "auto|perfect|x|equilibrium|time (auto: equilibrium / horizon / 2ln-n band / "
           "perfect by capability)"},
          {"x", "int", "0", "x for target=x (0 = perfect balance)"},
          {"horizon", "double", "50", "time horizon for target=time"},
          {"budget", "int", "5e7", "event budget per replication (rounds capped at 1e5)"},
          {"probe", "bool", "0",
           "1 = run one extra instrumented replication per kind (process.* metrics; "
           "implied by --trace-out)"},
          {"conformance", "bool", "0 (run default)",
           "attach the conformance monitor roster to the instrumented replication "
           "(implies probe=1)"},
          {"gap", "int", "per kind", "forwarded to rls_naive/graph_rls/open"},
          {"threshold", "int", "floor(m/n)", "forwarded to threshold"},
          {"p", "double", "0.5", "forwarded to threshold"},
          {"level_threshold", "int", "0", "forwarded to rls"},
          {"speeds", "string", "uniform", "forwarded to speed_rls"},
          {"weights", "string", "unit", "forwarded to weighted_rls"},
          {"topology", "string", "complete", "forwarded to graph_rls"},
          {"degree", "int", "4", "forwarded to graph_rls"},
          {"lambda", "double", "0.5", "forwarded to open"},
          {"mu", "double", "1.0", "forwarded to open"},
          {"d", "int", "1", "forwarded to open"}}});
}

}  // namespace rlslb::scenario::builtin
