// serve_* -- the online serving subsystem scenarios.
//
// Each scenario streams one workload trace (workload/generators.hpp)
// through the incremental OnlineAllocator under the sharded event loop
// (serve/event_loop.hpp) and reports:
//   - a deterministic gap trajectory (checkpoint epochs) and a summary
//     table with migration counts and the balance gap against the paper's
//     closed-system floor (gap 1 for unit weights; the heaviest ball for
//     weighted traffic) -- byte-identical for a fixed seed across runs,
//     thread counts, and shard counts;
//   - a timing table plus a "throughput" JSONL record (events/sec of the
//     decision+apply+repair loop), which CI gates via
//     scripts/compare_results.py next to the wall-clock trajectory.
//
// Shared params: n (bins), events (trace length), d (arrival choices),
// shards, epoch (events per snapshot), repair (repair moves per epoch),
// lambda (arrivals/bin/time), mu (departure rate), resample (RLS clock
// rate), weight (background ball weight), record=FILE (tee the trace out;
// JSONL/CSV/binary by extension), trace=FILE (replay a recorded trace
// instead of generating; format by extension), trace_out=FILE (write a
// Chrome/Perfetto trace of the loop's phases). Kind-specific params are
// listed at each builder.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "rng/splitmix64.hpp"
#include "scenario/builtin/builtin.hpp"
#include "util/assert.hpp"
#include "serve/event_loop.hpp"
#include "serve/online_allocator.hpp"
#include "workload/compose.hpp"
#include "workload/generators.hpp"
#include "workload/trace_io.hpp"

namespace rlslb::scenario::builtin {

namespace {

workload::OpenTraceOptions baseTraceOptions(ScenarioContext& ctx, std::int64_t bins,
                                            std::int64_t events) {
  workload::OpenTraceOptions o;
  o.bins = bins;
  o.arrivalRatePerBin = ctx.params.getDouble("lambda", 1.0);
  o.departureRate = ctx.params.getDouble("mu", 0.125);
  o.resampleRate = ctx.params.getDouble("resample", 1.0);
  o.ballWeight = ctx.params.getInt("weight", 1);
  o.maxEvents = events;
  return o;
}

std::unique_ptr<workload::TraceGenerator> buildTrace(ScenarioContext& ctx,
                                                     const std::string& kind,
                                                     std::int64_t bins, std::int64_t events,
                                                     std::uint64_t seed) {
  const workload::OpenTraceOptions base = baseTraceOptions(ctx, bins, events);
  if (kind == "poisson") {
    return std::make_unique<workload::PoissonTrace>(base, seed);
  }
  if (kind == "bursty") {
    workload::BurstyTraceOptions o;
    o.base = base;
    o.burstRateFactor = ctx.params.getDouble("burst_factor", 8.0);
    o.calmToBurstRate = ctx.params.getDouble("calm_to_burst", 0.05);
    o.burstToCalmRate = ctx.params.getDouble("burst_to_calm", 0.5);
    return std::make_unique<workload::BurstyTrace>(o, seed);
  }
  if (kind == "diurnal") {
    workload::DiurnalTraceOptions o;
    o.base = base;
    o.amplitude = ctx.params.getDouble("amplitude", 0.8);
    o.period = ctx.params.getDouble("period", 64.0);
    return std::make_unique<workload::DiurnalTrace>(o, seed);
  }
  if (kind == "composed") {
    const std::string spec = ctx.params.getString(
        "spec", "diurnal(0.8,64)*bursty(8,0.05,0.5)+hotspot(16,32,8)");
    workload::ComposeSpec parsed;
    std::string error;
    const bool ok = workload::parseComposeSpec(spec, &parsed, &error);
    if (!ok) std::fprintf(stderr, "serve_composed: bad spec= (%s)\n", error.c_str());
    RLSLB_ASSERT_MSG(ok, "spec= does not parse; see rlslb traces for the algebra");
    return std::make_unique<workload::ComposedTrace>(base, std::move(parsed), seed);
  }
  RLSLB_ASSERT(kind == "adversarial");
  workload::HotspotTraceOptions o;
  o.base = base;
  o.burstPeriod = ctx.params.getDouble("burst_period", 16.0);
  o.burstSize = ctx.params.getInt("burst_size", 32);
  o.hotWeight = ctx.params.getInt("hot_weight", 8);
  return std::make_unique<workload::HotspotTrace>(o, seed);
}

/// partitioned= param -> ApplyMode: "auto" (default; partitioned when the
/// pool has workers and shards > 1), "0"/"seq" (fused sequential apply),
/// "1"/"part" (force the partitioned path).
serve::ApplyMode parseApplyMode(const std::string& value) {
  if (value == "auto") return serve::ApplyMode::kAuto;
  if (value == "0" || value == "seq") return serve::ApplyMode::kSequential;
  if (value == "1" || value == "part") return serve::ApplyMode::kPartitioned;
  RLSLB_ASSERT_MSG(false, "partitioned= must be auto, 0/seq, or 1/part");
  return serve::ApplyMode::kAuto;
}

void runServe(ScenarioContext& ctx, const std::string& kind) {
  const std::int64_t n = ctx.params.getInt("n", ctx.sized(256));
  std::int64_t events = ctx.params.getInt("events", ctx.sized(6'000'000));
  serve::AllocatorOptions allocOptions;
  allocOptions.bins = n;
  allocOptions.arrivalChoices = static_cast<int>(ctx.params.getInt("d", 2));
  allocOptions.invertAcceptance = ctx.params.getBool("invert", false);
  const bool conformance = ctx.params.getBool("conformance", ctx.conformanceDefault);
  serve::LoopOptions loopOptions;
  loopOptions.shards = static_cast<int>(ctx.params.getInt("shards", 8));
  loopOptions.epochEvents = ctx.params.getInt("epoch", 1024);
  loopOptions.repairMovesPerEpoch = static_cast<int>(ctx.params.getInt("repair", 4));
  loopOptions.seed = ctx.seed;
  loopOptions.applyMode = parseApplyMode(ctx.params.getString("partitioned", "auto"));
  const std::string replayPath = ctx.params.getString("trace", "");
  const std::string recordPath = ctx.params.getString("record", "");

  // Telemetry: the loop exports its counters/phase timings into the run's
  // registry; runOne emits the merged snapshot as a "metrics" record.
  loopOptions.metrics = &ctx.metrics;
  // Tracing: the driver-wide --trace-out writer if attached, or a
  // scenario-local one when the trace_out= param asks for a per-run file.
  const std::string traceOutPath = ctx.params.getString("trace_out", "");
  obs::TraceWriter localTrace;
  loopOptions.trace = ctx.trace;
  if (!traceOutPath.empty()) {
    if (obs::kTracingCompiledIn) {
      loopOptions.trace = &localTrace;
    } else {
      ctx.note("trace_out=" + traceOutPath +
               " ignored: tracing is compiled out (build with -DRLSLB_TRACING=ON)");
    }
  }

  // Trace source: generated (optionally tee'd to JSONL), or replayed.
  const std::uint64_t traceSeed = rng::streamSeed(ctx.seed, stableHash("trace:" + kind));
  std::unique_ptr<workload::TraceGenerator> generated;
  std::ifstream replayIn;
  std::ofstream recordOut;
  std::unique_ptr<workload::TraceGenerator> source;
  RLSLB_ASSERT_MSG(replayPath.empty() || recordPath.empty(),
                   "trace= (replay) and record= (tee the generated trace) are mutually "
                   "exclusive; a replayed trace is already on disk");
  if (!replayPath.empty()) {
    // The epoch/checkpoint/warmup math below needs the true trace length,
    // which for a replay is the file, not the `events` param. The format
    // (JSONL / CSV / binary) follows the file extension.
    const workload::TraceFormat replayFormat = workload::traceFormatFromPath(replayPath);
    {
      std::ifstream count(replayPath, std::ios::binary);
      RLSLB_ASSERT_MSG(count.is_open(), "cannot open trace= replay file");
      events = workload::countTraceEvents(count, replayFormat);
      RLSLB_ASSERT_MSG(events > 0, "trace= replay file holds no events");
    }
    replayIn.open(replayPath, std::ios::binary);
    RLSLB_ASSERT_MSG(replayIn.is_open(), "cannot open trace= replay file");
    source = workload::makeTraceReader(replayIn, replayFormat);
  } else {
    generated = buildTrace(ctx, kind, n, events, traceSeed);
    if (!recordPath.empty()) {
      recordOut.open(recordPath, std::ios::binary);
      RLSLB_ASSERT_MSG(recordOut.is_open(), "cannot open record= output file");
      source = std::make_unique<workload::RecordingTrace>(
          *generated, recordOut, workload::traceFormatFromPath(recordPath));
    } else {
      source = std::move(generated);
    }
  }

  // Epoch observation: a handful of trajectory checkpoints plus post-warmup
  // gap statistics and the per-epoch wall-clock distribution. Computed
  // before the loop so the conformance warmup can be sized from it.
  const std::int64_t totalEpochs =
      (events + loopOptions.epochEvents - 1) / loopOptions.epochEvents;

  // Conformance: the default serve roster (load conservation, the paper's
  // gap envelope, latency drift) rides the epoch boundary when
  // conformance=1 (or --conformance= made it the run default).
  if (conformance) {
    obs::ServeConformanceParams cp;
    cp.n = n;
    const double mu = ctx.params.getDouble("mu", 0.125);
    cp.expectedBalls =
        mu > 0.0 ? static_cast<std::int64_t>(ctx.params.getDouble("lambda", 1.0) *
                                             static_cast<double>(n) / mu)
                 : 0;
    cp.d = allocOptions.arrivalChoices;
    cp.totalEpochs = totalEpochs;
    obs::installServeMonitors(ctx.monitors, cp);
    ctx.monitors.beginRun();
    loopOptions.monitors = &ctx.monitors;
  }

  serve::OnlineAllocator allocator(allocOptions);
  serve::ShardedEventLoop loop(allocator, loopOptions, ctx.pool());

  const std::int64_t checkpointEvery = std::max<std::int64_t>(1, totalEpochs / 8);
  const std::int64_t warmupEpochs = totalEpochs / 4;
  Table trajectory({"epoch", "trace time", "live balls", "total load", "gap", "migrations"});
  double gapSum = 0.0;
  std::int64_t gapEpochs = 0;
  std::int64_t maxGap = 0;
  std::vector<double> epochNs;
  const serve::ShardedEventLoop::RunResult runResult =
      loop.run(*source, [&](const serve::EpochStats& s) {
    if (s.epoch % checkpointEvery == 0 || s.epoch + 1 == totalEpochs) {
      trajectory.row()
          .cell(s.epoch)
          .cell(s.traceTime, 5)
          .cell(s.liveBalls)
          .cell(s.totalLoad)
          .cell(s.gap())
          .cell(s.migrations);
    }
    if (s.epoch >= warmupEpochs) {
      gapSum += static_cast<double>(s.gap());
      ++gapEpochs;
      if (s.gap() > maxGap) maxGap = s.gap();
    }
    if (s.events > 0) {
      epochNs.push_back(s.wallSeconds * 1e9 / static_cast<double>(s.events));
    }
      });
  const auto& c = allocator.counters();

  if (loopOptions.trace == &localTrace) {
    RLSLB_ASSERT_MSG(localTrace.writeFile(traceOutPath), "cannot write trace_out= file");
    ctx.note("[trace] " + std::to_string(localTrace.eventCount()) + " events -> " +
             traceOutPath + "  (load in ui.perfetto.dev or chrome://tracing)");
  }

  ctx.emitTable(trajectory, "[serve] " + kind + " gap trajectory, n=" + std::to_string(n) +
                                " (checkpoint epochs; gap = max - min bin load)");

  const double meanGap = gapEpochs > 0 ? gapSum / static_cast<double>(gapEpochs) : 0.0;
  const std::int64_t bound = std::max<std::int64_t>(1, allocator.maxWeightSeen());
  // Final balance through the closed-system vocabulary (the same
  // sim::BalanceState view process::Process::state() exposes).
  const sim::BalanceState finalBalance = allocator.balanceState();
  Table summary({"events", "arrivals", "departures", "resamples", "migrations",
                 "migr/resample", "repairs", "mean gap", "max gap", "final disc",
                 "closed bound", "gap/bound"});
  summary.row()
      .cell(c.events)
      .cell(c.arrivals)
      .cell(c.departures)
      .cell(c.resamples)
      .cell(c.migrations)
      .cell(c.resamples > 0
                ? static_cast<double>(c.migrations) / static_cast<double>(c.resamples)
                : 0.0,
            3)
      .cell(c.repairMigrations)
      .cell(meanGap, 4)
      .cell(maxGap)
      .cell(finalBalance.discrepancy(), 3)
      .cell(bound)
      .cell(meanGap / static_cast<double>(bound), 3);
  ctx.emitTable(summary,
                "[serve] " + kind +
                    " summary (post-warmup gap vs the paper's closed-system balance floor)");

  // Wall-clock view: loop throughput and the per-event cost distribution.
  std::sort(epochNs.begin(), epochNs.end());
  const double meanNs = [&] {
    double total = 0.0;
    for (const double v : epochNs) total += v;
    return epochNs.empty() ? 0.0 : total / static_cast<double>(epochNs.size());
  }();
  const double p99Ns =
      epochNs.empty() ? 0.0
                      : epochNs[static_cast<std::size_t>(
                            static_cast<double>(epochNs.size() - 1) * 0.99)];
  const double eventsPerSec =
      runResult.wallSeconds > 0.0
          ? static_cast<double>(runResult.events) / runResult.wallSeconds
          : 0.0;
  Table timing({"events", "epochs", "loop wall s", "events/sec", "mean ns/event",
                "p99 ns/event (epoch)", "apply", "queued ops", "cross-shard ops"});
  timing.row()
      .cell(runResult.events)
      .cell(runResult.epochs)
      .cell(runResult.wallSeconds, 4)
      .cell(eventsPerSec, 6)
      .cell(meanNs, 4)
      .cell(p99Ns, 4)
      .cell(loop.usesPartitionedApply() ? "partitioned" : "fused")
      .cell(runResult.queue.queuedOps)
      .cell(runResult.queue.crossShardOps);
  ctx.emitTimingTable(timing, "[serve] " + kind +
                                  " loop throughput (decision+apply+repair wall-clock; "
                                  "trace generation excluded)");
  if (ctx.sink != nullptr) {
    ctx.sink->writeThroughput(ctx.activeScenario, runResult.events, eventsPerSec);
  }
}

std::vector<int> parseIntList(const std::string& csv, const char* what) {
  std::vector<int> values;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string token =
        csv.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    RLSLB_ASSERT_MSG(!token.empty(), "empty entry in a comma-separated list param");
    const int v = static_cast<int>(std::stoll(token));
    RLSLB_ASSERT_MSG(v >= 1, what);
    values.push_back(v);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  RLSLB_ASSERT_MSG(!values.empty(), what);
  return values;
}

/// serve_scaling: one Poisson trace served repeatedly under every
/// (threads, shards) combination of the sweep lists, each row on its own
/// ThreadPool. Every row must finish in the byte-identical final state
/// (asserted), so the only thing the sweep varies is wall-clock: per-row
/// events/sec goes out as a "throughput" record named
/// <scenario>/s<shards>t<threads>, which scripts/compare_results.py gates
/// both against the committed baseline and *within the run* (for each
/// multi-thread row group, the best multi-shard rate must hold against the
/// single-shard rate).
void runServeScaling(ScenarioContext& ctx) {
  const std::int64_t n = ctx.params.getInt("n", ctx.sized(256));
  const std::int64_t events = ctx.params.getInt("events", ctx.sized(2'000'000));
  serve::AllocatorOptions allocOptions;
  allocOptions.bins = n;
  allocOptions.arrivalChoices = static_cast<int>(ctx.params.getInt("d", 2));
  const auto epochEvents = ctx.params.getInt("epoch", 1024);
  const auto repair = static_cast<int>(ctx.params.getInt("repair", 4));
  const std::vector<int> threadList =
      parseIntList(ctx.params.getString("thread_list", "1,2,4"), "thread_list entries must be >= 1");
  const std::vector<int> shardList =
      parseIntList(ctx.params.getString("shard_list", "1,2,4,8"), "shard_list entries must be >= 1");
  // Thread counts beyond the machine are skipped, not measured: an
  // oversubscribed pool only measures scheduler churn, and the within-run
  // scaling gate in scripts/compare_results.py would gate on that noise.
  const int hardware = runner::ThreadPool::resolveThreadCount(0);
  std::vector<int> skippedThreads;
  const std::uint64_t traceSeed = rng::streamSeed(ctx.seed, stableHash("trace:scaling"));

  Table scaling({"threads", "shards", "apply", "loop wall s", "events/sec",
                 "queued ops", "cross-shard ops", "speedup vs s=1"});
  std::vector<std::int64_t> refLoads;
  std::int64_t finalGap = 0;
  std::int64_t finalLive = 0;
  std::int64_t finalTotal = 0;
  std::int64_t finalMigrations = 0;
  for (const int threads : threadList) {
    if (threads > hardware) {
      skippedThreads.push_back(threads);
      continue;
    }
    runner::ThreadPool pool(threads);
    double singleShardEps = 0.0;
    for (const int shards : shardList) {
      const workload::OpenTraceOptions base = baseTraceOptions(ctx, n, events);
      workload::PoissonTrace trace(base, traceSeed);
      serve::OnlineAllocator allocator(allocOptions);
      serve::LoopOptions loopOptions;
      loopOptions.shards = shards;
      loopOptions.epochEvents = epochEvents;
      loopOptions.repairMovesPerEpoch = repair;
      loopOptions.seed = ctx.seed;
      loopOptions.applyMode =
          shards > 1 ? serve::ApplyMode::kPartitioned : serve::ApplyMode::kSequential;
      serve::ShardedEventLoop loop(allocator, loopOptions, pool);
      const serve::ShardedEventLoop::RunResult runResult = loop.run(trace);

      // The sweep is execution-only: every row must land in the same state.
      if (refLoads.empty()) {
        refLoads = allocator.loads();
        finalGap = allocator.gap();
        finalLive = allocator.liveBalls();
        finalTotal = allocator.totalLoad();
        finalMigrations =
            allocator.counters().migrations + allocator.counters().repairMigrations;
      } else {
        RLSLB_ASSERT_MSG(allocator.loads() == refLoads,
                         "serve_scaling rows diverged: the partitioned apply broke the "
                         "shard/thread invariance contract");
      }

      const double eventsPerSec =
          runResult.wallSeconds > 0.0
              ? static_cast<double>(runResult.events) / runResult.wallSeconds
              : 0.0;
      if (shards == 1) singleShardEps = eventsPerSec;
      scaling.row()
          .cell(threads)
          .cell(shards)
          .cell(shards > 1 ? "partitioned" : "fused")
          .cell(runResult.wallSeconds, 4)
          .cell(eventsPerSec, 6)
          .cell(runResult.queue.queuedOps)
          .cell(runResult.queue.crossShardOps)
          .cell(singleShardEps > 0.0 ? eventsPerSec / singleShardEps : 0.0, 3);
      if (ctx.sink != nullptr) {
        // append chain, not operator+: GCC 12 -Wrestrict false positive
        // (bug 105329) on chained string concatenation under -O3.
        std::string rowName = ctx.activeScenario;
        rowName.append("/s").append(std::to_string(shards));
        rowName.append("t").append(std::to_string(threads));
        ctx.sink->writeThroughput(rowName, runResult.events, eventsPerSec);
      }
    }
  }
  std::string title =
      "[serve] shard-scaling sweep (same trace + seed per row; final "
      "states asserted byte-identical)";
  if (!skippedThreads.empty()) {
    title.append("; skipped thread counts beyond this machine's ");
    title.append(std::to_string(hardware)).append(" cores:");
    for (const int t : skippedThreads) {
      title.push_back(' ');
      title.append(std::to_string(t));
    }
  }
  ctx.emitTimingTable(scaling, title);

  Table summary({"events", "final gap", "live balls", "total load", "migrations"});
  summary.row()
      .cell(events)
      .cell(finalGap)
      .cell(finalLive)
      .cell(finalTotal)
      .cell(finalMigrations);
  ctx.emitTable(summary,
                "[serve] scaling sweep semantic outcome (identical for every row)");
}

}  // namespace

void registerServe(ScenarioRegistry& r) {
  const std::vector<process::ParamSpec> shared = {
      {"n", "int", "256 (scaled)", "bins"},
      {"events", "int", "6e6 (scaled)", "trace length"},
      {"d", "int", "2", "arrival choices (snapshot-least-loaded of d bins)"},
      {"shards", "int", "8", "decision partitions + apply-phase bin-ownership shards"},
      {"epoch", "int", "1024", "events per load snapshot"},
      {"partitioned", "string", "auto", "apply mode: auto, 0/seq (fused), 1/part"},
      {"repair", "int", "4", "cross-shard RLS repair moves per epoch"},
      {"lambda", "double", "1.0", "arrivals per bin per time unit"},
      {"mu", "double", "0.125", "per-ball departure rate"},
      {"resample", "double", "1.0", "per-ball RLS clock rate"},
      {"weight", "int", "1", "background ball weight"},
      {"conformance", "bool", "0 (run default)",
       "attach the conformance monitor roster at epoch boundaries"},
      {"invert", "bool", "0",
       "TEST HOOK: invert the allocator's acceptance rule (drives the gap up; "
       "pairs with conformance=1 to demo anomaly detection)"},
      {"record", "string", "(off)",
       "tee the generated trace to this file (.jsonl/.csv/.bin by extension)"},
      {"trace", "string", "(off)",
       "replay a recorded trace instead of generating (.jsonl/.csv/.bin by extension)"},
      {"trace_out", "string", "(off)",
       "write a Chrome/Perfetto trace of this run's phases to FILE"},
  };
  const auto add = [&](const std::string& kind, const std::string& what,
                       std::vector<process::ParamSpec> extra) {
    std::vector<process::ParamSpec> params = shared;
    params.insert(params.end(), extra.begin(), extra.end());
    r.add({"serve_" + kind,
           "online serving: " + what + " trace through the incremental RLS allocator",
           "open-system serving (Ganesh et al. [11]; Section 7 outlook)",
           [kind](ScenarioContext& ctx) { runServe(ctx, kind); }, std::move(params)});
  };
  add("poisson", "constant-rate Poisson arrivals/departures", {});
  add("bursty", "2-state MMPP calm/burst",
      {{"burst_factor", "double", "8.0", "burst-state rate multiplier"},
       {"calm_to_burst", "double", "0.05", "calm -> burst switching rate"},
       {"burst_to_calm", "double", "0.5", "burst -> calm switching rate"}});
  add("diurnal", "sinusoid-modulated (day/night) arrivals",
      {{"amplitude", "double", "0.8", "rate modulation depth (0..1)"},
       {"period", "double", "64.0", "day length in time units"}});
  add("adversarial", "synchronized heavy hot-spot bursts",
      {{"burst_period", "double", "16.0", "time between synchronized bursts"},
       {"burst_size", "int", "32", "balls per burst"},
       {"hot_weight", "int", "8", "weight of each burst ball"}});
  add("composed", "composable trace algebra (sum/modulate/overlay of factors)",
      {{"spec", "string", "diurnal(0.8,64)*bursty(8,0.05,0.5)+hotspot(16,32,8)",
        "trace algebra spec; factors/combinators listed by `rlslb traces`"}});
  r.add({"serve_scaling",
         "online serving: shard-scaling sweep of the partitioned apply (per-row "
         "throughput records, byte-identical final states)",
         "partitioned-apply execution study (shards/threads as pure perf knobs)",
         runServeScaling,
         {{"n", "int", "256 (scaled)", "bins"},
          {"events", "int", "2e6 (scaled)", "trace length per sweep row"},
          {"d", "int", "2", "arrival choices"},
          {"epoch", "int", "1024", "events per load snapshot"},
          {"repair", "int", "4", "cross-shard RLS repair moves per epoch"},
          {"lambda", "double", "1.0", "arrivals per bin per time unit"},
          {"mu", "double", "0.125", "per-ball departure rate"},
          {"resample", "double", "1.0", "per-ball RLS clock rate"},
          {"weight", "int", "1", "background ball weight"},
          {"thread_list", "string", "1,2,4", "pool sizes to sweep (csv)"},
          {"shard_list", "string", "1,2,4,8", "ownership shard counts to sweep (csv)"}}});
}

}  // namespace rlslb::scenario::builtin
