// Scenario parameter overrides: the `key=value` spec layer.
//
// The `rlslb` driver and the standalone harness mains accept bare
// `key=value` tokens after the scenario names (`rlslb run e15_trajectory
// n=1e6 horizon=12`). This mirrors util/cli's `--key=value` contract —
// typed getters, loud failure on malformed values, and an unused-key sweep
// so a typo'd override aborts the run instead of silently measuring the
// default — but lives one layer up: params are per-scenario data routed
// through ScenarioContext, not process-wide flags.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "report/json.hpp"

namespace rlslb::scenario {

class ScenarioParams {
 public:
  ScenarioParams() = default;

  /// Parse `key=value` tokens. On a malformed token (no '=', empty key)
  /// returns false and stores a message in `error`.
  static bool fromTokens(const std::vector<std::string>& tokens, ScenarioParams* out,
                         std::string* error);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string getString(const std::string& name, const std::string& dflt) const;
  /// Integers accept scientific shorthand: "1e6" -> 1000000. Aborts on
  /// non-integral or out-of-range values.
  [[nodiscard]] std::int64_t getInt(const std::string& name, std::int64_t dflt) const;
  [[nodiscard]] double getDouble(const std::string& name, double dflt) const;
  [[nodiscard]] bool getBool(const std::string& name, bool dflt) const;

  /// Keys never queried by any getter. The driver aborts when a key was
  /// consumed by none of the scenarios it ran.
  [[nodiscard]] std::vector<std::string> unusedKeys() const;

  [[nodiscard]] bool empty() const { return values_.empty(); }

  /// {"n":"1e6","gap":"2"} — raw strings, insertion into the scenario_start
  /// record, ordered by key for determinism.
  [[nodiscard]] report::Json toJson() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
};

}  // namespace rlslb::scenario
