// Scenario subsystem: experiments as data.
//
// Every experiment harness (E1-E15 and the design ablations; roster in
// docs/EXPERIMENTS.md) registers itself in the ScenarioRegistry as a named
// Scenario — name, description, paper reference, and a run function over a
// ScenarioContext. The context carries the run knobs (scale/seed/reps/
// threads), the shared replication thread pool (one pool serves every
// scenario in a driver run), per-scenario `key=value` parameter overrides,
// and the ResultSink that turns each table into a machine-readable JSONL
// record next to the ASCII output.
//
// Entry points: the unified `rlslb` driver (examples/rlslb.cpp) and the
// thin standalone bench_* mains (scenario/harness.hpp), which both resolve
// scenarios through the same registry — `./bench/bench_theorem1` and
// `rlslb run e1_theorem1` run the same registered function.
#pragma once

#include <cstdint>
#include <functional>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/monitor.hpp"
#include "obs/trace.hpp"
#include "process/params.hpp"
#include "report/result_sink.hpp"
#include "runner/thread_pool.hpp"
#include "scenario/params.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace rlslb::scenario {

/// Everything a scenario needs to run: knobs, pool, params, sink.
struct ScenarioContext {
  double scale = 1.0;              // size multiplier (small 0.5 / default 1 / full 2)
  std::string scaleName = "default";
  std::int64_t reps = 0;           // 0 = per-experiment default
  std::uint64_t seed = 20170529;   // the IPDPS date
  int threads = 0;                 // 0 = hardware concurrency
  bool csv = false;                // also print CSV blocks (legacy --csv)
  std::shared_ptr<runner::ThreadPool> sharedPool;
  report::ResultSink* sink = nullptr;  // may be null (console-only run)
  ScenarioParams params;
  std::ostream* console = &std::cout;  // null = fully quiet (tests)

  /// The run's telemetry registry (src/obs/): scenarios wire it into their
  /// subsystems (e.g. serve::LoopOptions.metrics); runOne resets it per
  /// scenario and, when non-empty after the body, emits the merged
  /// snapshot as a {"type":"metrics"} record to the sink.
  obs::MetricsRegistry metrics;
  /// Non-null when the driver runs with --trace-out= (and tracing is
  /// compiled in): scenarios with traceable subsystems attach it (the
  /// harness also attaches it to the shared pool for job spans).
  obs::TraceWriter* trace = nullptr;

  /// The run's conformance roster (obs/monitor.hpp). Scenarios that honor
  /// `conformance=` install their default monitors here and hand the set
  /// to their subsystems (serve::LoopOptions.monitors /
  /// obs::ProcessProbe::Options::monitors); runOne clears it per scenario
  /// and, when monitors ran, emits each violation as a {"type":"anomaly"}
  /// record plus a {"type":"conformance"} summary record.
  obs::MonitorSet monitors;
  /// Default for the scenarios' `conformance=` param; set by the
  /// --conformance= driver flag (on|off|strict, default off; `rlslb
  /// watch` defaults it on).
  bool conformanceDefault = false;
  /// --conformance=strict: the driver exits non-zero on any error-severity
  /// anomaly (the CI gate).
  bool conformanceStrict = false;
  /// Run totals, accumulated by runOne across scenarios for the driver's
  /// exit summary.
  std::int64_t conformanceChecks = 0;
  std::int64_t anomalyWarnings = 0;
  std::int64_t anomalyErrors = 0;

  /// Set by ScenarioRegistry::runOne for the duration of the run; sink
  /// records are tagged with it.
  std::string activeScenario;

  /// Lazily create the shared pool from `threads`. One pool is reused by
  /// every replication sweep of every scenario in the run, so the
  /// --threads knob governs the whole process (see runner/thread_pool.hpp).
  runner::ThreadPool& pool() {
    if (!sharedPool) sharedPool = std::make_shared<runner::ThreadPool>(threads);
    return *sharedPool;
  }

  /// Scaled replication count.
  [[nodiscard]] std::int64_t repsOr(std::int64_t dflt) const {
    if (reps > 0) return reps;
    const auto r = static_cast<std::int64_t>(static_cast<double>(dflt) * scale);
    return r < 2 ? 2 : r;
  }

  /// Scaled size (rounded to a multiple of `quantum` for n | m constraints).
  [[nodiscard]] std::int64_t sized(std::int64_t dflt, std::int64_t quantum = 1) const {
    auto v = static_cast<std::int64_t>(static_cast<double>(dflt) * scale);
    if (v < quantum) v = quantum;
    return v / quantum * quantum;
  }

  /// Print the table (plus CSV when --csv) and emit a deterministic
  /// "table" record to the sink.
  void emitTable(const Table& table, const std::string& title);

  /// Same, but as a "timing" record: for tables whose cells contain
  /// wall-clock measurements, which are excluded from the byte-determinism
  /// contract (see report/result_sink.hpp).
  void emitTimingTable(const Table& table, const std::string& title);

  /// Console side note (replaces the harnesses' bare printf commentary);
  /// silent when console is null.
  void note(const std::string& text);
};

/// A registered experiment.
struct Scenario {
  std::string name;         // stable CLI identifier, e.g. "e1_theorem1"
  std::string description;  // one line: what it reproduces
  std::string paperRef;     // e.g. "Theorem 1; Section 5"
  std::function<void(ScenarioContext&)> run;
  /// Declared `key=value` knobs (printed by `rlslb describe <name>`).
  /// Shares the spec type with the process registry so both layers'
  /// parameters read the same way. Defaulted so parameterless scenarios
  /// keep the four-field aggregate registration.
  std::vector<process::ParamSpec> params = {};
};

class ScenarioRegistry {
 public:
  /// The process-wide registry used by the drivers. Fresh instances can be
  /// constructed for tests.
  static ScenarioRegistry& global();

  /// Throws std::invalid_argument on a duplicate name.
  void add(Scenario s);

  [[nodiscard]] const Scenario* find(const std::string& name) const;
  /// All scenarios, name-sorted.
  [[nodiscard]] std::vector<const Scenario*> list() const;
  [[nodiscard]] std::size_t size() const { return byName_.size(); }

  /// Run one scenario: banner + scenario_start record, the scenario body,
  /// then the scenario_end record with wall-clock seconds. Throws
  /// std::out_of_range (with the known-name list) on an unknown name.
  void runOne(const std::string& name, ScenarioContext& ctx) const;

 private:
  std::map<std::string, Scenario> byName_;
};

/// Register the built-in experiment roster (idempotent on the global
/// registry; repeatable on fresh registries). Explicit registration — not
/// static initializers — so scenarios linked from the static library are
/// never silently dropped by the linker.
void registerBuiltinScenarios(ScenarioRegistry& registry = ScenarioRegistry::global());

}  // namespace rlslb::scenario
