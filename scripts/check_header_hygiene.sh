#!/usr/bin/env bash
# Self-contained-includes check for the installed public API surface.
#
# `cmake --install` ships every header under src/ to include/rlslb/, and
# out-of-tree consumers (find_package(rlslb)) may include any of them first.
# This script compiles each header as its own translation unit, so a header
# that silently leans on a transitive include breaks HERE instead of in a
# consumer build. CI runs it as the header-hygiene job; run it locally with
#
#     scripts/check_header_hygiene.sh [compiler]
#
# (default compiler: $CXX, else c++).
set -u
cd "$(dirname "$0")/.."

CXX_BIN="${1:-${CXX:-c++}}"
status=0
checked=0
tu="$(mktemp /tmp/header_hygiene_XXXXXX.cpp)"
err="$(mktemp /tmp/header_hygiene_err_XXXXXX.txt)"
trap 'rm -f "$tu" "$err"' EXIT

for hdr in $(find src -name '*.hpp' | sort); do
  checked=$((checked + 1))
  # Wrap in a one-line TU: compiling the .hpp directly would trip
  # -W#pragma-once-outside-header style warnings, and consumers include
  # headers exactly like this anyway.
  printf '#include "%s"\n' "${hdr#src/}" > "$tu"
  if ! "$CXX_BIN" -std=c++20 -fsyntax-only -Isrc -Wall -Wextra -Werror \
      "$tu" 2> "$err"; then
    echo "NOT SELF-CONTAINED: $hdr"
    sed 's/^/    /' "$err"
    status=1
  fi
done

# The sweep is a recursive glob, but guard the telemetry layer explicitly:
# src/obs/ headers are included by the scenario context, so a hygiene sweep
# that silently stopped seeing them would pass while the installed API rots.
if ! find src/obs -name '*.hpp' 2>/dev/null | grep -q .; then
  echo "FAIL: no src/obs/ headers in the sweep (telemetry layer moved?)"
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "OK: all $checked public headers compile standalone ($CXX_BIN)"
else
  echo "FAIL: some headers are not self-contained (see above)"
fi
exit "$status"
