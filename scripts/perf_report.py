#!/usr/bin/env python3
"""Render a perf-trajectory dashboard from rlslb results.jsonl runs.

Input is the JSONL stream `rlslb ... --out=results.jsonl` writes (schema
in docs/EXPERIMENTS.md). The dashboard has four sections:

  1. Per-phase timing -- from each scenario's {"type":"metrics"} record:
     the serve loop's phase counters (serve.phase.<phase>_ns) rendered as
     a table plus a stacked ASCII bar, so "where did the epoch go" is one
     glance. Works on any <prefix>.phase.<name>_ns vocabulary, not just
     serve.
  2. Counters / gauges / histograms / sketches -- the rest of the metrics
     record: merged counter values, final gauges, fixed-bucket histograms
     (with explicit underflow/overflow rows) and streaming quantile
     sketches as compact rows.
  3. Conformance -- each scenario's {"type":"conformance"} summary (check
     and anomaly counts, gap/latency sketch quantiles) plus a table of
     the individual {"type":"anomaly"} records.
  4. Capacity frontier -- each scenario's {"type":"frontier"} cells
     (serve_capacity's n x load-factor x trace sweep): a per-cell table
     (gap, events/sec, p99 ns/event, bytes/ball, peak RSS, budget-skip
     status) plus ASCII heatmaps over the (n, load) grid per trace and
     backend, one for final gap and one for bytes/ball, so the frontier
     shape is visible without opening a notebook.
  5. Perf trajectory -- scenario wall-clocks and events/sec for the
     current run, and, when prior runs are passed with --prior (oldest
     first, e.g. the sha-keyed CI artifacts), a per-scenario trend table
     AND an ASCII trend plot across the rolling window with anomaly
     markers (o = clean run, w = warn-level anomalies, E = error-level).

Everything here is presentation: the gating logic lives in
scripts/compare_results.py. Typical use:

    rlslb run serve_poisson --conformance=on --out=results.jsonl
    scripts/perf_report.py results.jsonl

    # CI: current against the last three artifacts
    scripts/perf_report.py results.jsonl \
        --prior run-3.jsonl --prior run-2.jsonl --prior run-1.jsonl
"""

import argparse
import json
import sys

BAR_WIDTH = 40
PLOT_HEIGHT = 7
MAX_ANOMALY_ROWS = 20


def load_run(path):
    """Parse one results.jsonl into {scenario: {...}} plus run-level info."""
    run = {"scenarios": {}, "manifest": None, "path": path}

    def scen(name):
        return run["scenarios"].setdefault(
            name, {"metrics": None, "wall_s": None, "events_per_sec": None,
                   "events": None, "conformance": None, "anomalies": [],
                   "frontier": []})

    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: not valid JSON: {e}")
            t = rec.get("type")
            if t == "manifest":
                run["manifest"] = rec
            elif t == "metrics":
                scen(rec["scenario"])["metrics"] = rec
            elif t == "anomaly":
                scen(rec.get("scenario", "?"))["anomalies"].append(rec)
            elif t == "conformance":
                scen(rec["scenario"])["conformance"] = rec
            elif t == "frontier":
                scen(rec["scenario"])["frontier"].append(rec)
            elif t == "scenario_end":
                scen(rec["scenario"])["wall_s"] = float(rec["wall_s"])
            elif t == "throughput":
                s = scen(rec["scenario"])
                s["events_per_sec"] = float(rec["events_per_sec"])
                s["events"] = rec.get("events")
    if not run["scenarios"]:
        sys.exit(f"{path}: no scenario records found")
    return run


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def fmt_si(v):
    """Compact magnitude label for plot axes (36.8M, 1.2k, 0.43)."""
    for div, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs(v) >= div:
            return f"{v / div:.1f}{suffix}"
    return f"{v:.3g}"


def anomaly_marker(scenario_data):
    """One plot marker per run: E > w > o by worst severity present."""
    severities = {a.get("severity") for a in scenario_data.get("anomalies", [])}
    if "error" in severities:
        return "E"
    if "warn" in severities:
        return "w"
    return "o"


def phase_rows(counters):
    """[(phase, ns)] from <prefix>.phase.<name>_ns counters, input order."""
    rows = []
    for name, value in counters.items():
        if ".phase." in name and name.endswith("_ns"):
            phase = name.split(".phase.", 1)[1][:-len("_ns")]
            rows.append((phase, int(value)))
    return rows


def print_phase_timing(scenario, counters):
    rows = phase_rows(counters)
    total = sum(ns for _, ns in rows)
    if total <= 0:
        return
    print(f"\n  per-phase timing -- {scenario} "
          f"(instrumented loop time {fmt_ns(total)})")
    print(f"    {'phase':10} {'time':>12} {'share':>7}  stacked")
    for phase, ns in rows:
        share = ns / total
        bar = "#" * max(1, round(share * BAR_WIDTH)) if ns > 0 else ""
        print(f"    {phase:10} {fmt_ns(ns):>12} {share:7.1%}  {bar}")


def print_sketches(scenario, sketches, title="sketches"):
    live = {k: v for k, v in sketches.items()
            if isinstance(v, dict) and v.get("count", 0) > 0}
    if not live:
        return
    width = max(max(len(k) for k in live), len("sketch"))
    print(f"\n  {title} -- {scenario} (streaming quantiles)")
    print(f"    {'sketch':{width}} {'count':>10} {'min':>10} {'p50':>10}"
          f" {'p90':>10} {'p99':>10} {'p999':>10} {'max':>10}")
    for name, s in live.items():
        print(f"    {name:{width}} {s.get('count', 0):>10,}"
              f" {s.get('min', 0):>10,} {s.get('p50', 0):>10,}"
              f" {s.get('p90', 0):>10,} {s.get('p99', 0):>10,}"
              f" {s.get('p999', 0):>10,} {s.get('max', 0):>10,}")


def print_counters(scenario, metrics):
    counters = {k: v for k, v in metrics.get("counters", {}).items()
                if ".phase." not in k}
    gauges = metrics.get("gauges", {})
    hists = metrics.get("histograms", {})
    if counters:
        print(f"\n  counters -- {scenario}")
        width = max(len(k) for k in counters)
        for name, value in counters.items():
            print(f"    {name:{width}} {value:>14,}")
    if gauges:
        print(f"\n  gauges -- {scenario}")
        width = max(len(k) for k in gauges)
        for name, value in gauges.items():
            print(f"    {name:{width}} {value:>14g}")
    for name, h in hists.items():
        bounds = h.get("bounds", [])
        counts = h.get("counts", [])
        underflow = h.get("underflow", 0)
        overflow = h.get("overflow", 0)
        total = h.get("total", sum(counts) + underflow + overflow)
        if total <= 0:
            continue
        print(f"\n  histogram -- {scenario} {name} (n={total})")
        rows = []
        if bounds and underflow > 0:
            rows.append((f"<{bounds[0]}", underflow))
        rows += [(f"<={b}", c) for b, c in zip(bounds, counts)]
        if overflow > 0:
            rows.append((f">{bounds[-1]}" if bounds else ">all", overflow))
        peak = max((c for _, c in rows), default=0)
        for label, count in rows:
            if count == 0:
                continue
            bar = "#" * max(1, round(count / peak * BAR_WIDTH)) if peak else ""
            print(f"    {label:>8} {count:>10,}  {bar}")
    print_sketches(scenario, metrics.get("sketches", {}))


def print_conformance(scenario, data):
    conf = data.get("conformance")
    anomalies = data.get("anomalies", [])
    if conf is None and not anomalies:
        return
    if conf is not None:
        tallies = conf.get("anomalies", {})
        print(f"\n  conformance -- {scenario}: {conf.get('checks', 0):,} checks"
              f" by {conf.get('monitors', 0)} monitors --"
              f" {tallies.get('warn', 0)} warn, {tallies.get('error', 0)} error"
              + (f", {tallies.get('dropped', 0)} dropped"
                 if tallies.get("dropped", 0) else ""))
        print_sketches(scenario,
                       {k: conf[k] for k in ("gap", "latency_ns_per_event")
                        if isinstance(conf.get(k), dict)},
                       title="conformance sketches")
    if anomalies:
        print(f"\n  anomalies -- {scenario} ({len(anomalies)})")
        print(f"    {'sev':5} {'monitor':17} {'metric':12} {'step':>9}"
              f" {'value':>12} {'bound':>12}  detail")
        for a in anomalies[:MAX_ANOMALY_ROWS]:
            print(f"    {a.get('severity', '?'):5}"
                  f" {a.get('monitor', '?'):17}"
                  f" {a.get('metric', '?'):12}"
                  f" {a.get('step', 0):>9,}"
                  f" {a.get('value', 0):>12g} {a.get('bound', 0):>12g}"
                  f"  {a.get('detail', '')}")
        if len(anomalies) > MAX_ANOMALY_ROWS:
            print(f"    ... and {len(anomalies) - MAX_ANOMALY_ROWS} more")


HEAT_SHADES = " .:-=+*#%@"


def heat_char(value, lo, hi):
    """Shade character for value scaled into [lo, hi]."""
    if value is None:
        return " "
    if hi <= lo:
        return HEAT_SHADES[-1]
    frac = (value - lo) / (hi - lo)
    return HEAT_SHADES[min(len(HEAT_SHADES) - 1, int(frac * len(HEAT_SHADES)))]


def print_frontier_heatmap(title, ns, loads, grid, fmt):
    """Numeric (n x load) grid, each cell suffixed with its heat shade."""
    values = [v for row in grid for v in row if v is not None]
    if not values:
        return
    lo, hi = min(values), max(values)
    cell_w = max([len("load=" + fmt_si(l)) for l in loads]
                 + [len(fmt(v)) + 1 for v in values])
    label_w = max(len("n=" + fmt_si(n)) for n in ns)
    print(f"\n    {title} (heat {HEAT_SHADES[0]!r} low .. '@' high; "
          f"range {fmt(lo)}..{fmt(hi)})")
    header = " " * (4 + label_w)
    for load in loads:
        header += f" {'load=' + fmt_si(load):>{cell_w}}"
    print(header)
    for i, n in enumerate(ns):
        row = f"    {'n=' + fmt_si(n):>{label_w}}"
        for j in range(len(loads)):
            v = grid[i][j]
            cell = fmt(v) + heat_char(v, lo, hi) if v is not None else "-"
            row += f" {cell:>{cell_w}}"
        print(row)


def print_frontier(scenario, cells):
    if not cells:
        return
    print(f"\n  capacity frontier -- {scenario} ({len(cells)} cells)")
    print(f"    {'n':>10} {'load':>5} {'trace':28} {'backend':8} {'gap':>4}"
          f" {'ev/s':>8} {'p99/ev':>9} {'B/ball':>7} {'rss':>7}  status")
    for c in sorted(cells, key=lambda c: (c.get("trace", ""),
                                          c.get("backend", ""),
                                          c.get("n", 0),
                                          c.get("load_factor", 0))):
        if c.get("skipped"):
            status = (f"SKIPPED est {fmt_si(c.get('estimated_bytes', 0))}B >"
                      f" budget {fmt_si(c.get('budget_bytes', 0))}B")
            print(f"    {c.get('n', 0):>10,} {c.get('load_factor', 0):>5g}"
                  f" {c.get('trace', '?')[:28]:28} {c.get('backend', '?'):8}"
                  f" {'-':>4} {'-':>8} {'-':>9} {'-':>7} {'-':>7}  {status}")
            continue
        print(f"    {c.get('n', 0):>10,} {c.get('load_factor', 0):>5g}"
              f" {c.get('trace', '?')[:28]:28} {c.get('backend', '?'):8}"
              f" {c.get('final_gap', 0):>4}"
              f" {fmt_si(c.get('events_per_sec', 0)):>8}"
              f" {fmt_ns(c.get('p99_ns_event', 0)):>9}"
              f" {c.get('bytes_per_ball', 0):>7.1f}"
              f" {fmt_si(c.get('peak_rss_bytes', 0)) + 'B':>7}  ok")

    # Heatmaps over the (n, load) grid, one group per (trace, backend).
    groups = {}
    for c in cells:
        if c.get("skipped"):
            continue
        groups.setdefault((c.get("trace", "?"), c.get("backend", "?")),
                          []).append(c)
    for (trace, backend), group in sorted(groups.items()):
        ns = sorted({c["n"] for c in group})
        loads = sorted({c["load_factor"] for c in group})
        if len(ns) < 2 and len(loads) < 2:
            continue  # a single cell has no shape to render
        by_cell = {(c["n"], c["load_factor"]): c for c in group}
        for metric, fmt in (("final_gap", lambda v: f"{v:g}"),
                            ("bytes_per_ball", lambda v: f"{v:.1f}")):
            grid = [[by_cell.get((n, l), {}).get(metric) for l in loads]
                    for n in ns]
            print_frontier_heatmap(
                f"{metric} -- trace {trace}, backend {backend}",
                ns, loads, grid, fmt)


def print_trend_plot(name, series, markers):
    """ASCII trend plot: one column per run, marker = anomaly severity."""
    values = [v for v in series if v is not None]
    if len(values) < 2:
        return
    lo, hi = min(values), max(values)
    span = hi - lo
    width = 3 * len(series)
    grid = [[" "] * width for _ in range(PLOT_HEIGHT)]
    for i, v in enumerate(series):
        if v is None:
            continue
        frac = (v - lo) / span if span > 0 else 0.5
        row = (PLOT_HEIGHT - 1) - round(frac * (PLOT_HEIGHT - 1))
        grid[row][3 * i + 1] = markers[i]
    label_width = max(len(fmt_si(hi)), len(fmt_si(lo)))
    print(f"\n  trend -- {name} events/s ({len(series)} runs, oldest -> "
          "current; o clean, w warn anomalies, E error anomalies)")
    for r, cells in enumerate(grid):
        if r == 0:
            label = fmt_si(hi)
        elif r == PLOT_HEIGHT - 1:
            label = fmt_si(lo)
        else:
            label = ""
        print(f"    {label:>{label_width}} |{''.join(cells).rstrip()}")
    print(f"    {'':>{label_width}} +{'-' * width}")


def print_trajectory(current, priors):
    """Wall + throughput across the rolling window, oldest -> current."""
    runs = priors + [current]
    names = sorted({n for run in runs for n in run["scenarios"]})
    print("\nperf trajectory (oldest -> current"
          + (f"; {len(priors)} prior runs" if priors else "") + ")")
    header = f"  {'scenario':24} {'metric':>9}"
    for run in runs:
        tag = "current" if run is current else run["path"].rsplit("/", 1)[-1][:12]
        header += f" {tag:>12}"
    print(header + ("   trend" if priors else ""))
    for name in names:
        for metric, key, fmt in (("wall_s", "wall_s", "{:>12.3f}"),
                                 ("events/s", "events_per_sec", "{:>12.0f}")):
            series = [run["scenarios"].get(name, {}).get(key) for run in runs]
            if all(v is None for v in series):
                continue
            row = f"  {name:24} {metric:>9}"
            for v in series:
                row += fmt.format(v) if v is not None else f" {'-':>11}"
            if priors:
                pts = [v for v in series if v is not None]
                if len(pts) >= 2 and pts[0] > 0:
                    change = pts[-1] / pts[0] - 1.0
                    row += f"  {change:+6.1%}"
            print(row)
    if not priors:
        return
    # Rolling-window plots: throughput trend per scenario, each run's
    # column marked by the worst anomaly severity it recorded.
    for name in names:
        series = [run["scenarios"].get(name, {}).get("events_per_sec")
                  for run in runs]
        markers = [anomaly_marker(run["scenarios"].get(name, {}))
                   for run in runs]
        print_trend_plot(name, series, markers)
        for run, marker in zip(runs, markers):
            if marker == "o":
                continue
            data = run["scenarios"].get(name, {})
            errors = sum(1 for a in data.get("anomalies", [])
                         if a.get("severity") == "error")
            warns = sum(1 for a in data.get("anomalies", [])
                        if a.get("severity") == "warn")
            tag = "current" if run is current else run["path"].rsplit("/", 1)[-1]
            print(f"      [{marker}] {tag}: {errors} error, {warns} warn")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("results", help="results.jsonl from an rlslb --out= run")
    ap.add_argument("--prior", metavar="PATH", action="append", default=[],
                    help="prior results.jsonl (repeatable, oldest first) for "
                         "the rolling-window trend section")
    ap.add_argument("--no-metrics", action="store_true",
                    help="skip the per-scenario metrics sections (trajectory only)")
    args = ap.parse_args()

    current = load_run(args.results)
    priors = [load_run(p) for p in args.prior]

    m = current["manifest"]
    if m:
        print(f"run: {args.results} -- {m.get('tool', 'rlslb')} "
              f"{m.get('version', '?')} @ {m.get('git_sha', '?')}, "
              f"{m.get('build_type', '?')}, seed {m.get('seed', '?')}, "
              f"scale {m.get('scale', '?')}, "
              f"threads {m.get('threads_resolved', '?')}, "
              f"host {m.get('host', '?')}")
    else:
        print(f"run: {args.results} (no manifest record)")

    if not args.no_metrics:
        for name in sorted(current["scenarios"]):
            data = current["scenarios"][name]
            if data["metrics"] is not None:
                print_phase_timing(name, data["metrics"].get("counters", {}))
                print_counters(name, data["metrics"])
            print_conformance(name, data)
            print_frontier(name, data.get("frontier", []))

    print_trajectory(current, priors)


if __name__ == "__main__":
    main()
