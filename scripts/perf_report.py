#!/usr/bin/env python3
"""Render a perf-trajectory dashboard from rlslb results.jsonl runs.

Input is the JSONL stream `rlslb ... --out=results.jsonl` writes (schema
in docs/EXPERIMENTS.md). The dashboard has three sections:

  1. Per-phase timing -- from each scenario's {"type":"metrics"} record:
     the serve loop's phase counters (serve.phase.<phase>_ns) rendered as
     a table plus a stacked ASCII bar, so "where did the epoch go" is one
     glance. Works on any <prefix>.phase.<name>_ns vocabulary, not just
     serve.
  2. Counters / gauges / histograms -- the rest of the metrics record:
     merged counter values, final gauges, and fixed-bucket histograms as
     compact count rows.
  3. Perf trajectory -- scenario wall-clocks and events/sec for the
     current run, and, when prior runs are passed with --prior (oldest
     first, e.g. the sha-keyed CI artifacts), a per-scenario trend line
     across the rolling window.

Everything here is presentation: the gating logic lives in
scripts/compare_results.py. Typical use:

    rlslb run serve_poisson --out=results.jsonl
    scripts/perf_report.py results.jsonl

    # CI: current against the last three artifacts
    scripts/perf_report.py results.jsonl \
        --prior run-3.jsonl --prior run-2.jsonl --prior run-1.jsonl
"""

import argparse
import json
import sys

BAR_WIDTH = 40


def load_run(path):
    """Parse one results.jsonl into {scenario: {...}} plus run-level info."""
    run = {"scenarios": {}, "manifest": None, "path": path}

    def scen(name):
        return run["scenarios"].setdefault(
            name, {"metrics": None, "wall_s": None, "events_per_sec": None,
                   "events": None})

    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{lineno}: not valid JSON: {e}")
            t = rec.get("type")
            if t == "manifest":
                run["manifest"] = rec
            elif t == "metrics":
                scen(rec["scenario"])["metrics"] = rec
            elif t == "scenario_end":
                scen(rec["scenario"])["wall_s"] = float(rec["wall_s"])
            elif t == "throughput":
                s = scen(rec["scenario"])
                s["events_per_sec"] = float(rec["events_per_sec"])
                s["events"] = rec.get("events")
    if not run["scenarios"]:
        sys.exit(f"{path}: no scenario records found")
    return run


def fmt_ns(ns):
    if ns >= 1e9:
        return f"{ns / 1e9:.3f} s"
    if ns >= 1e6:
        return f"{ns / 1e6:.3f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.3f} us"
    return f"{ns:.0f} ns"


def phase_rows(counters):
    """[(phase, ns)] from <prefix>.phase.<name>_ns counters, input order."""
    rows = []
    for name, value in counters.items():
        if ".phase." in name and name.endswith("_ns"):
            phase = name.split(".phase.", 1)[1][:-len("_ns")]
            rows.append((phase, int(value)))
    return rows


def print_phase_timing(scenario, counters):
    rows = phase_rows(counters)
    total = sum(ns for _, ns in rows)
    if total <= 0:
        return
    print(f"\n  per-phase timing -- {scenario} "
          f"(instrumented loop time {fmt_ns(total)})")
    print(f"    {'phase':10} {'time':>12} {'share':>7}  stacked")
    for phase, ns in rows:
        share = ns / total
        bar = "#" * max(1, round(share * BAR_WIDTH)) if ns > 0 else ""
        print(f"    {phase:10} {fmt_ns(ns):>12} {share:7.1%}  {bar}")


def print_counters(scenario, metrics):
    counters = {k: v for k, v in metrics.get("counters", {}).items()
                if ".phase." not in k}
    gauges = metrics.get("gauges", {})
    hists = metrics.get("histograms", {})
    if counters:
        print(f"\n  counters -- {scenario}")
        width = max(len(k) for k in counters)
        for name, value in counters.items():
            print(f"    {name:{width}} {value:>14,}")
    if gauges:
        print(f"\n  gauges -- {scenario}")
        width = max(len(k) for k in gauges)
        for name, value in gauges.items():
            print(f"    {name:{width}} {value:>14g}")
    for name, h in hists.items():
        bounds = h.get("bounds", [])
        counts = h.get("counts", [])
        total = h.get("total", sum(counts))
        if total <= 0:
            continue
        print(f"\n  histogram -- {scenario} {name} (n={total})")
        labels = [f"<={b}" for b in bounds] + [f">{bounds[-1]}" if bounds else "all"]
        peak = max(counts) if counts else 0
        for label, count in zip(labels, counts):
            if count == 0:
                continue
            bar = "#" * max(1, round(count / peak * BAR_WIDTH)) if peak else ""
            print(f"    {label:>8} {count:>10,}  {bar}")


def print_trajectory(current, priors):
    """Wall + throughput across the rolling window, oldest -> current."""
    runs = priors + [current]
    names = sorted({n for run in runs for n in run["scenarios"]})
    print("\nperf trajectory (oldest -> current"
          + (f"; {len(priors)} prior runs" if priors else "") + ")")
    header = f"  {'scenario':24} {'metric':>9}"
    for run in runs:
        tag = "current" if run is current else run["path"].rsplit("/", 1)[-1][:12]
        header += f" {tag:>12}"
    print(header + ("   trend" if priors else ""))
    for name in names:
        for metric, key, fmt in (("wall_s", "wall_s", "{:>12.3f}"),
                                 ("events/s", "events_per_sec", "{:>12.0f}")):
            series = [run["scenarios"].get(name, {}).get(key) for run in runs]
            if all(v is None for v in series):
                continue
            row = f"  {name:24} {metric:>9}"
            for v in series:
                row += fmt.format(v) if v is not None else f" {'-':>11}"
            if priors:
                pts = [v for v in series if v is not None]
                if len(pts) >= 2 and pts[0] > 0:
                    change = pts[-1] / pts[0] - 1.0
                    row += f"  {change:+6.1%}"
            print(row)


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("results", help="results.jsonl from an rlslb --out= run")
    ap.add_argument("--prior", metavar="PATH", action="append", default=[],
                    help="prior results.jsonl (repeatable, oldest first) for "
                         "the rolling-window trend section")
    ap.add_argument("--no-metrics", action="store_true",
                    help="skip the per-scenario metrics sections (trajectory only)")
    args = ap.parse_args()

    current = load_run(args.results)
    priors = [load_run(p) for p in args.prior]

    m = current["manifest"]
    if m:
        print(f"run: {args.results} -- {m.get('tool', 'rlslb')} "
              f"{m.get('version', '?')} @ {m.get('git_sha', '?')}, "
              f"{m.get('build_type', '?')}, seed {m.get('seed', '?')}, "
              f"scale {m.get('scale', '?')}, "
              f"threads {m.get('threads_resolved', '?')}, "
              f"host {m.get('host', '?')}")
    else:
        print(f"run: {args.results} (no manifest record)")

    if not args.no_metrics:
        for name in sorted(current["scenarios"]):
            metrics = current["scenarios"][name]["metrics"]
            if metrics is None:
                continue
            print_phase_timing(name, metrics.get("counters", {}))
            print_counters(name, metrics)

    print_trajectory(current, priors)


if __name__ == "__main__":
    main()
