#!/usr/bin/env python3
"""Compare a results.jsonl run against the committed perf baseline.

CI runs `rlslb all --scale=small --out=results.jsonl` and calls

    scripts/compare_results.py results.jsonl BENCH_baseline.json

The baseline stores per-scenario wall-clock seconds (the "scenario_end"
records) and, for the serving scenarios, per-scenario events/sec (the
"throughput" records; schema in docs/EXPERIMENTS.md). Because CI machines
and the machine that produced the baseline differ in speed, absolute
numbers are not comparable; instead the check normalizes by the run's
median speed ratio over the wall-clock scenarios:

    ratio_i = current_i / baseline_i          (per scenario)
    speed   = median(ratio_i)                 (machine-speed factor)
    fail if ratio_i > speed * (1 + tolerance) for any scenario

i.e. a scenario fails when it regressed >20% relative to how the rest of
the suite moved. Scenarios faster than --min-wall in the baseline are
skipped for the *wall-clock* gate (too noisy); the serving scenarios are
still gated through their throughput metric, which uses the same machine
normalization inverted and a wider tolerance (the loops measure
sub-second windows):

    slowdown_i = baseline_eps_i / current_eps_i
    fail if slowdown_i > speed * (1 + throughput_tolerance)

Limitation: a *uniform* slowdown across every scenario is
indistinguishable from a slower machine and will not trip either gate;
the uploaded artifact keeps the absolute numbers for human trend review.
To narrow that blind spot, the check also inspects the *absolute*
(un-normalized) ratios: when every gated scenario drifts in the same
direction by more than --trend-threshold, it prints a non-gating
WARNING (a uniform drift is either a machine-speed change or exactly
the regression the normalization hides -- a human should look).

Shard-scaling rows: the serve_scaling scenario emits one throughput record
per sweep row, named <scenario>/s<shards>t<threads>. Besides the baseline
gate above, these are checked *within the current run* (so the check is
machine-independent): for every row group with threads > 1, the best
multi-shard rate must reach --scaling-tolerance of that group's
single-shard rate. The partitioned apply must never cost more than the
tolerated overhead when real worker threads are available; on multi-core
runners it is expected to win outright.

Prior-run trend line: CI uploads every run's results.jsonl as an artifact
keyed by git sha. Passing runs back in, OLDEST FIRST, with

    scripts/compare_results.py results.jsonl BENCH_baseline.json \
        --prior run-3.jsonl --prior run-2.jsonl --prior run-1.jsonl

prints a non-gating current-vs-newest-prior table. Two runs from the same
runner class are far closer in machine speed than either is to the
committed baseline, so this is the sharpest view of what a single commit
changed -- but runners are not identical, so it stays a trend line, never
a gate.

With at least --drift-window priors (default 3) the rolling window is
also scanned for SUSTAINED drift: a scenario that moved in the same
direction across every one of the last --drift-window run-to-run steps
AND by more than --trend-threshold in total is flagged (WARNING when
slower -- a creeping regression the per-commit noise hides; note when
faster). Passing --drift-gate promotes that warning to a gating FAILURE
whenever enough priors are present to make the scan meaningful (fewer
priors leave it a warning: the window cannot be evaluated, and a red CI
on missing artifacts would train people to delete the flag). When every
gated scenario sustains a speedup, the check suggests regenerating the
baseline with --write-baseline, since a stale slow baseline widens every
later gate.

Regenerate the baseline after an intentional perf change:

    scripts/compare_results.py results.jsonl --write-baseline BENCH_baseline.json
"""

import argparse
import json
import re
import statistics
import sys

SCALING_ROW_RE = re.compile(r"^(.+)/s(\d+)t(\d+)$")


def scaling_groups(throughput):
    """{(scenario, threads): {shards: events_per_sec}} from sweep rows."""
    groups = {}
    for name, eps in throughput.items():
        m = SCALING_ROW_RE.match(name)
        if not m:
            continue
        key = (m.group(1), int(m.group(3)))
        groups.setdefault(key, {})[int(m.group(2))] = eps
    return groups


def load_metrics(jsonl_path):
    """(scenario -> wall seconds, scenario -> events/sec) from the run."""
    walls = {}
    throughput = {}
    with open(jsonl_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as e:
                sys.exit(f"{jsonl_path}:{lineno}: not valid JSON: {e}")
            if rec.get("type") == "scenario_end":
                walls[rec["scenario"]] = float(rec["wall_s"])
            elif rec.get("type") == "throughput":
                throughput[rec["scenario"]] = float(rec["events_per_sec"])
    if not walls:
        sys.exit(f"{jsonl_path}: no scenario_end records (was the run aborted?)")
    return walls, throughput


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("results", help="results.jsonl from an `rlslb all --out=` run")
    ap.add_argument("baseline", nargs="?", help="committed BENCH_baseline.json")
    ap.add_argument("--write-baseline", metavar="PATH",
                    help="write PATH from the results instead of comparing")
    ap.add_argument("--tolerance", type=float, default=0.20,
                    help="allowed relative regression (default 0.20 = 20%%)")
    ap.add_argument("--min-wall", type=float, default=0.7,
                    help="skip scenarios below this baseline wall-clock in "
                         "seconds for the wall-clock gate (default 0.7; "
                         "sub-second scenarios show ~20%% run-to-run spread, "
                         "the same order as the gate itself)")
    ap.add_argument("--throughput-tolerance", type=float, default=0.35,
                    help="allowed machine-normalized events/sec regression "
                         "(default 0.35; wider than --tolerance because the "
                         "serving loops measure sub-second windows)")
    ap.add_argument("--scaling-tolerance", type=float, default=0.60,
                    help="within-run shard-scaling gate: for each multi-thread "
                         "sweep group, best multi-shard events/sec must be at "
                         "least this fraction of the single-shard rate "
                         "(default 0.60; the fused single-shard loop is fast "
                         "enough that the partitioned path's fixed queue cost "
                         "is a larger relative overhead)")
    ap.add_argument("--prior", metavar="PATH", action="append", default=[],
                    help="results.jsonl from a prior run (the sha-keyed CI "
                         "artifact); repeatable, pass oldest first. Prints a "
                         "non-gating current-vs-newest-prior trend table and, "
                         "with >= --drift-window priors, scans the rolling "
                         "window for sustained drift")
    ap.add_argument("--drift-window", type=int, default=3,
                    help="number of consecutive run-to-run steps that must "
                         "move the same way (on top of a total change beyond "
                         "--trend-threshold) before drift counts as sustained "
                         "(default 3)")
    ap.add_argument("--drift-gate", action="store_true",
                    help="promote the sustained-drift WARNING to a gating "
                         "failure when >= --drift-window priors are supplied "
                         "(with fewer priors the scan cannot run and the flag "
                         "is a no-op, so CI can always pass it)")
    ap.add_argument("--trend-threshold", type=float, default=0.10,
                    help="non-gating uniform-drift warning: fires when every "
                         "gated scenario's absolute ratio moves the same way "
                         "by more than this (default 0.10 = 10%%)")
    args = ap.parse_args()

    walls, throughput = load_metrics(args.results)

    if args.write_baseline:
        payload = {
            "comment": "per-scenario wall-clock + events/sec baseline for "
                       "scripts/compare_results.py; regenerate with "
                       "--write-baseline after intentional perf changes",
            "flags": "rlslb all --scale=small",
            "scenarios": {name: round(w, 4) for name, w in sorted(walls.items())},
            "throughput": {name: round(eps, 1)
                           for name, eps in sorted(throughput.items())},
        }
        with open(args.write_baseline, "w", encoding="utf-8") as f:
            json.dump(payload, f, indent=2)
            f.write("\n")
        print(f"wrote {args.write_baseline} with {len(walls)} scenarios "
              f"({len(throughput)} with throughput)")
        return

    if not args.baseline:
        sys.exit("either a baseline to compare against or --write-baseline is required")
    with open(args.baseline, encoding="utf-8") as f:
        baseline_doc = json.load(f)
    baseline = baseline_doc["scenarios"]
    baseline_throughput = baseline_doc.get("throughput", {})

    missing = sorted(set(baseline) - set(walls))
    if missing:
        sys.exit(f"FAIL: scenarios in the baseline but absent from the run: {missing}")
    added = sorted(set(walls) - set(baseline))
    if added:
        print(f"note: scenarios not in the baseline (skipped): {added}")

    gated = {n: w for n, w in walls.items()
             if n in baseline and baseline[n] >= args.min_wall}
    skipped = sorted(n for n in walls if n in baseline and baseline[n] < args.min_wall)
    if skipped:
        print(f"note: below --min-wall={args.min_wall}s in the baseline, "
              f"wall-clock not gated: {skipped}")
    if not gated:
        sys.exit("FAIL: no scenario exceeds --min-wall; the baseline is too small to gate on")

    ratios = {n: w / baseline[n] for n, w in gated.items()}
    speed = statistics.median(ratios.values())
    limit = speed * (1.0 + args.tolerance)

    print(f"machine-speed factor (median wall ratio): {speed:.3f}; "
          f"per-scenario limit: {limit:.3f}x baseline")
    print(f"{'scenario':24} {'baseline_s':>10} {'current_s':>10} {'ratio':>7} "
          f"{'vs median':>9}  verdict")
    failures = []
    for name in sorted(ratios):
        ratio = ratios[name]
        rel = ratio / speed
        verdict = "ok"
        if ratio > limit:
            verdict = "REGRESSION"
            failures.append(name)
        print(f"{name:24} {baseline[name]:10.3f} {walls[name]:10.3f} {ratio:7.3f} "
              f"{rel:9.3f}  {verdict}")

    # Throughput gate (serving scenarios): a drop in events/sec beyond what
    # the machine-speed factor explains is a regression, regardless of the
    # scenario's absolute wall-clock.
    throughput_missing = sorted(set(baseline_throughput) - set(throughput))
    if throughput_missing:
        sys.exit("FAIL: scenarios with baseline throughput but no throughput "
                 f"record in the run: {throughput_missing}")
    if baseline_throughput:
        thr_limit = speed * (1.0 + args.throughput_tolerance)
        print(f"throughput limit: {thr_limit:.3f}x baseline slowdown "
              f"(tolerance {args.throughput_tolerance:.0%})")
        print(f"{'scenario':24} {'base_ev/s':>12} {'cur_ev/s':>12} {'slowdown':>9} "
              f"{'vs median':>9}  verdict")
        for name in sorted(baseline_throughput):
            if throughput[name] <= 0:
                failures.append(name)
                print(f"{name:24} {baseline_throughput[name]:12.0f} "
                      f"{throughput[name]:12.0f} {'inf':>9} {'inf':>9}  REGRESSION")
                continue
            slowdown = baseline_throughput[name] / throughput[name]
            rel = slowdown / speed
            verdict = "ok"
            if slowdown > thr_limit:
                verdict = "REGRESSION"
                failures.append(name)
            print(f"{name:24} {baseline_throughput[name]:12.0f} "
                  f"{throughput[name]:12.0f} {slowdown:9.3f} {rel:9.3f}  {verdict}")

    # Within-run shard-scaling gate (serve_scaling sweep rows): compares
    # rows of the SAME run against each other, so machine speed cancels
    # entirely. A multi-thread group whose best multi-shard row falls below
    # the tolerance means the partitioned apply is costing more than it can
    # ever return -- a regression in the parallel drain path.
    groups = scaling_groups(throughput)
    multi = {k: v for k, v in sorted(groups.items()) if k[1] > 1}
    if multi:
        print(f"shard-scaling gate (within-run): best multi-shard >= "
              f"{args.scaling_tolerance:.0%} of single-shard per thread group")
        print(f"{'group':24} {'s1 ev/s':>12} {'best ev/s':>12} {'(shards)':>8} "
              f"{'ratio':>7}  verdict")
        for (base, threads), rows in multi.items():
            label = f"{base} t={threads}"
            if 1 not in rows:
                print(f"{label:24} {'-':>12} {'-':>12} {'-':>8} {'-':>7}  "
                      f"SKIP (no single-shard row)")
                continue
            contenders = {s: eps for s, eps in rows.items() if s > 1}
            if not contenders:
                print(f"{label:24} {rows[1]:12.0f} {'-':>12} {'-':>8} {'-':>7}  "
                      f"SKIP (no multi-shard rows)")
                continue
            best_shards = max(contenders, key=contenders.get)
            best = contenders[best_shards]
            ratio = best / rows[1] if rows[1] > 0 else float("inf")
            verdict = "ok"
            if ratio < args.scaling_tolerance:
                verdict = "REGRESSION"
                failures.append(f"{base}/s{best_shards}t{threads} (scaling)")
            print(f"{label:24} {rows[1]:12.0f} {best:12.0f} {best_shards:>8} "
                  f"{ratio:7.3f}  {verdict}")

    # Non-gating uniform-drift trend warning from the ABSOLUTE ratios: the
    # median normalization above cancels any across-the-board movement, so a
    # uniform slowdown sails through the gates -- surface it loudly instead
    # of silently. Throughput slowdowns join the wall-clock ratios (both are
    # "current is slower when > 1").
    drift = list(ratios.values())
    drift += [baseline_throughput[n] / throughput[n]
              for n in baseline_throughput if throughput.get(n, 0) > 0]
    if len(drift) >= 3:
        up = 1.0 + args.trend_threshold
        down = 1.0 - args.trend_threshold
        if all(r > up for r in drift):
            print(f"WARNING: uniform drift -- every gated scenario is >"
                  f"{args.trend_threshold:.0%} slower than the baseline in "
                  f"absolute numbers (min ratio {min(drift):.3f}). The "
                  f"machine-speed normalization cannot distinguish a slower "
                  f"machine from an across-the-board regression; compare the "
                  f"results.jsonl artifact against a recent run from the "
                  f"same runner class before trusting this pass.")
        elif all(r < down for r in drift):
            print(f"note: uniform speedup -- every gated scenario is >"
                  f"{args.trend_threshold:.0%} faster than the baseline in "
                  f"absolute numbers (max ratio {max(drift):.3f}); likely a "
                  f"faster machine, or the baseline is stale.")

    # Non-gating prior-run trend line: absolute comparison against another
    # run's artifact. Same runner class => machine speed mostly cancels, so
    # this is the sharpest per-commit signal available -- but runners are
    # not identical, so it never gates.
    if args.prior:
        priors = [load_metrics(p) for p in args.prior]  # oldest -> newest
        prior_walls, prior_throughput = priors[-1]
        print(f"trend vs prior run ({args.prior[-1]}; absolute, non-gating):")
        print(f"{'scenario':24} {'prior':>12} {'current':>12} {'change':>8}")
        for name in sorted(set(walls) & set(prior_walls)):
            change = walls[name] / prior_walls[name] - 1.0
            print(f"{name:24} {prior_walls[name]:11.3f}s {walls[name]:11.3f}s "
                  f"{change:+8.1%}")
        for name in sorted(set(throughput) & set(prior_throughput)):
            if prior_throughput[name] <= 0:
                continue
            change = throughput[name] / prior_throughput[name] - 1.0
            print(f"{name:24} {prior_throughput[name]:12.0f} "
                  f"{throughput[name]:12.0f} {change:+8.1%}")
        only = sorted((set(walls) ^ set(prior_walls))
                      | (set(throughput) ^ set(prior_throughput)))
        if only:
            print(f"note: scenarios present in only one run: {only}")

        # Rolling-window sustained-drift scan: chronological series
        # [oldest prior, ..., newest prior, current]; a scenario drifts
        # when ALL of the last --drift-window run-to-run steps move the
        # same way and the total movement exceeds --trend-threshold.
        # Per-commit noise flips direction constantly; a monotone window
        # is exactly the creeping change the single-prior table hides.
        window = args.drift_window
        if len(priors) >= window:
            def sustained(series):
                """+total when monotonically slower, -total when faster."""
                if len(series) < window + 1 or any(v <= 0 for v in series):
                    return None
                tail = series[-(window + 1):]
                steps = [b / a for a, b in zip(tail, tail[1:])]
                total = tail[-1] / tail[0]
                if all(s > 1.0 for s in steps) and total > 1.0 + args.trend_threshold:
                    return total
                if all(s < 1.0 for s in steps) and total < 1.0 - args.trend_threshold:
                    return total
                return None

            slower, faster = [], []
            for name in sorted(walls):
                series = [pw[name] for pw, _ in priors if name in pw] + [walls[name]]
                total = sustained(series)
                if total is not None:
                    (slower if total > 1.0 else faster).append((name, total))
            for name in sorted(throughput):
                # events/sec inverted into "slowdown" so >1 means slower.
                series = [1.0 / pt[name] for _, pt in priors
                          if pt.get(name, 0) > 0] + [1.0 / throughput[name]
                                                     if throughput[name] > 0 else 0]
                total = sustained(series)
                if total is not None:
                    (slower if total > 1.0 else faster).append(
                        (f"{name} (throughput)", total))

            if slower:
                severity = "FAIL" if args.drift_gate else "WARNING"
                for name, total in slower:
                    print(f"{severity}: sustained drift -- {name} got slower "
                          f"in each of the last {window} runs "
                          f"({total - 1.0:+.1%} total); a creeping regression "
                          f"the per-commit noise hides. Bisect the window "
                          f"before it compounds.")
                    if args.drift_gate:
                        failures.append(f"{name} (sustained drift)")
            if faster:
                for name, total in faster:
                    print(f"note: sustained speedup -- {name} got faster in "
                          f"each of the last {window} runs "
                          f"({total - 1.0:+.1%} total)")
                gated_names = set(gated) | set(baseline_throughput)
                fast_names = {n.removesuffix(" (throughput)") for n, _ in faster}
                if gated_names and gated_names <= fast_names:
                    print("suggestion: every gated scenario sustains a "
                          "speedup -- the committed baseline looks stale; "
                          "regenerate it with: scripts/compare_results.py "
                          f"{args.results} --write-baseline {args.baseline}")
            if not slower and not faster:
                print(f"rolling window ({window} runs): no sustained drift")
        elif args.drift_gate:
            print(f"note: --drift-gate inactive -- {len(priors)} prior(s) "
                  f"supplied, the sustained-drift scan needs "
                  f">= --drift-window={window}")
    elif args.drift_gate:
        print("note: --drift-gate inactive -- no --prior runs supplied")

    if failures:
        sys.exit(f"FAIL: regression >{args.tolerance:.0%} vs baseline "
                 f"(machine-normalized) in: {sorted(set(failures))}")
    print("OK: no scenario regressed beyond the tolerance")


if __name__ == "__main__":
    main()
